"""``SafeguardedCompressor`` — guaranteed point-wise properties over any codec.

Wraps any registered compressor as an untrusted blackbox: compress, decode
the codec's own output, evaluate every declared :class:`Safeguard`
vectorized, and store bit-exact patches for each violating point in the
stream (container format v4, codec ``SAFE``).  Decoding applies the patches
after the inner decode, so the declared properties hold no matter what the
wrapped codec did.

Overhead for a compliant codec is one vectorized mask pass per safeguard on
the reconstruction the verify pass materializes anyway, plus an empty patch
section — see ``docs/safeguards.md`` for the model.
"""
from __future__ import annotations

import numpy as np

from repro.compressors.base import (
    Compressor,
    ErrorBound,
    get_compressor,
)
from repro.encoding.container import Container, ContainerError, peek_codec
from repro.observe.events import emit as _emit_event
from repro.observe.metrics import metrics
from repro.observe.tracer import span

from .engine import compute_patch_channel, put_patch_sections, apply_patch_sections
from .kinds import (
    NonFiniteSafeguard,
    RelErrorSafeguard,
    Safeguard,
    parse_safeguard,
    parse_safeguards,
)

__all__ = ["SafeguardedCompressor"]

#: Container format version for safeguard-bearing streams (see docs/formats.md).
SAFEGUARD_VERSION = 4


def _as_safeguard(sg: "Safeguard | str") -> Safeguard:
    return parse_safeguard(sg) if isinstance(sg, str) else sg


class SafeguardedCompressor(Compressor):
    """Adapter enforcing declared safeguards over an inner codec.

    ``inner`` may be a :class:`Compressor` instance, a registry name, or
    ``None`` for a decode-only instance (the registry entry used by
    ``repro.decompress`` dispatch).  ``safeguards`` accepts
    :class:`Safeguard` objects or spec strings like ``"rel:1e-3"``.
    """

    name = "SAFE"
    #: Non-finite inputs are sanitized for the inner codec when necessary and
    #: restored bit-exactly through the patch channel.
    allows_nonfinite = True

    def __init__(self, inner=None, safeguards=()) -> None:
        self._inner = inner
        self.safeguards: tuple[Safeguard, ...] = tuple(
            _as_safeguard(sg) for sg in safeguards
        )

    @property
    def inner(self) -> Compressor | None:
        if isinstance(self._inner, str):
            self._inner = get_compressor(self._inner)
        return self._inner

    @property
    def supported_bounds(self) -> tuple[type, ...]:
        inner = self.inner
        return inner.supported_bounds if inner is not None else ()

    @property
    def declared_rel_bound(self) -> float | None:
        """Value of the declared relative-error safeguard, if any."""
        for sg in self.safeguards:
            if isinstance(sg, RelErrorSafeguard):
                return sg.value
        return None

    # -- encode ------------------------------------------------------------

    def compress(self, data: np.ndarray, bound: ErrorBound) -> bytes:
        return self._compress_impl(data, bound)[0]

    def compress_verified(self, data: np.ndarray, bound: ErrorBound):
        with span("compress", codec=self.name) as sp:
            blob, final = self._compress_impl(data, bound)
            sp.add_bytes(in_=data.nbytes, out=len(blob))
        return blob, final

    def _compress_impl(self, data: np.ndarray, bound: ErrorBound) -> tuple[bytes, np.ndarray]:
        inner = self.inner
        if inner is None:
            raise ValueError(
                "SafeguardedCompressor needs an inner codec to compress "
                "(the bare registry instance is decode-only)"
            )
        inner._check_bound(bound)
        data = np.asarray(data)
        if data.size == 0:
            return self._compress_empty(data), data.copy()
        data = self._check_input(data, allow_nonfinite=True)

        stack = tuple(sg.resolve(data) for sg in self.safeguards)
        sanitized = data
        finite = np.isfinite(data)
        if not finite.all():
            nonfinite = ~finite
            if not any(isinstance(sg, NonFiniteSafeguard) for sg in stack):
                stack += (NonFiniteSafeguard(),)
            if not getattr(inner, "allows_nonfinite", False):
                sanitized = np.where(nonfinite, 0.0, data).astype(data.dtype, copy=False)

        inner_blob, recon = inner.compress_verified(sanitized, bound)
        with span("safeguard-verify", codec=inner.name, n=int(data.size)):
            channel = compute_patch_channel(stack, data, recon)
        self._record(data, recon, stack, channel, inner.name)

        box = self._new_container(self.name, data)
        box.put_str("safeguards", ";".join(sg.spec() for sg in stack))
        box.put_str("inner_codec", inner.name)
        box.put("inner", inner_blob)
        put_patch_sections(box, channel.patch_idx, channel.patch_val)
        blob = box.to_bytes(version=SAFEGUARD_VERSION)

        if channel.size:
            final = np.ascontiguousarray(recon.astype(data.dtype, copy=True))
            final.ravel()[channel.patch_idx.astype(np.int64)] = channel.patch_val
        else:
            final = np.ascontiguousarray(recon.astype(data.dtype, copy=False))
        return blob, final

    def _compress_empty(self, data: np.ndarray) -> bytes:
        if data.dtype not in (np.float32, np.float64):
            raise TypeError(f"expected float32/float64 data, got {data.dtype}")
        if data.ndim not in (1, 2, 3):
            raise ValueError(f"expected 1-D/2-D/3-D data, got ndim={data.ndim}")
        box = self._new_container(self.name, data)
        stack = tuple(sg.resolve(data) for sg in self.safeguards)
        box.put_str("safeguards", ";".join(sg.spec() for sg in stack))
        box.put_str("inner_codec", self.inner.name)
        box.put("inner", b"")
        put_patch_sections(
            box, np.empty(0, dtype=np.uint64), np.empty(0, dtype=data.dtype)
        )
        return box.to_bytes(version=SAFEGUARD_VERSION)

    def _record(self, data, recon, stack, channel, inner_name) -> None:
        reg = metrics()
        reg.counter("safeguard.points").inc(data.size)
        reg.counter("safeguard.patched").inc(channel.size)
        by_kind: dict[str, int] = {}
        spec_to_kind = {sg.spec(): sg.kind for sg in stack}
        for spec_, count in channel.counts.items():
            kind = spec_to_kind.get(spec_, spec_)
            by_kind[kind] = by_kind.get(kind, 0) + count
            reg.counter(f"safeguard.patched.{kind}").inc(count)
        if self.declared_rel_bound is not None:
            reg.histogram("safeguard.max_rel").observe(
                self._max_rel(data, recon, channel)
            )
        if channel.size:
            _emit_event(
                "safeguard-patch",
                codec=self.name,
                inner=inner_name,
                n=int(data.size),
                patched=channel.size,
                by_kind=by_kind,
            )

    @staticmethod
    def _max_rel(data: np.ndarray, recon: np.ndarray, channel) -> float:
        """Post-patch max point-wise relative error (``safeguard.max_rel``).

        Patched points carry no residual; exact zeros and non-finite
        originals are excluded, matching the audit convention.  On the
        compliant float32 hot path a float32 screen finds the argmax
        neighbourhood and only those points are re-measured in float64,
        which keeps this telemetry off the overhead budget's back.
        """
        x = np.ascontiguousarray(data).ravel()
        xd = np.ascontiguousarray(recon.astype(data.dtype, copy=False)).ravel()
        if data.dtype == np.float32 and channel.size == 0 and x.size > 4096:
            with np.errstate(invalid="ignore", over="ignore", under="ignore"):
                absx = np.abs(x)
                nz = absx > 0
                ratio = np.divide(
                    np.abs(xd - x), absx, out=np.zeros_like(absx), where=nz
                )
                m32 = float(ratio.max(initial=0.0))
                if np.isfinite(m32):
                    # Keep everything float32 rounding could have demoted
                    # from the true argmax; subnormal |x| gets no such
                    # guarantee, so it is always re-measured.
                    cand = nz & (
                        (ratio >= np.float32(m32 * (1.0 - 2e-6)))
                        | (absx < np.float32(1.2e-38))
                    )
                    idx = np.flatnonzero(cand)
                    if idx.size == 0:
                        return 0.0
                    if idx.size <= x.size // 8:
                        xs = x[idx].astype(np.float64)
                        err = np.abs(xd[idx].astype(np.float64) - xs)
                        nzs = np.isfinite(xs) & (xs != 0)
                        rel = np.divide(
                            err, np.abs(xs), out=np.zeros_like(err), where=nzs
                        )
                        return float(rel.max(initial=0.0))
                # NaN/Inf ratios (non-finite input) or a pathological
                # candidate blowup (e.g. all errors zero): the screen saved
                # nothing, measure exactly below.
        with np.errstate(invalid="ignore"):
            x64 = x.astype(np.float64, copy=False)
            err = np.abs(xd.astype(np.float64, copy=False) - x64)
            if channel.size:
                err[channel.patch_idx.astype(np.int64)] = 0.0
            absx = np.abs(x64)
            nz = np.isfinite(x64) & (absx != 0)
            rel = np.divide(err, absx, out=np.zeros_like(err), where=nz)
            return float(rel.max(initial=0.0))

    # -- decode ------------------------------------------------------------

    def decompress(self, blob: bytes) -> np.ndarray:
        box, shape, dtype = self._open_container(blob, self.name)
        # Patch application never needs the declared specs -- the channel is
        # self-contained -- but a stream that lost or mangled its property
        # declaration was written by a buggy writer and must fail loud, not
        # decode into an array whose guarantees nobody can state.
        if "safeguards" not in box:
            raise ContainerError(
                f"corrupt {self.name} stream: missing safeguards declaration"
            )
        try:
            parse_safeguards(box.get_str("safeguards"))
        except ValueError as exc:
            raise ContainerError(f"corrupt {self.name} stream: {exc}") from None
        n = int(np.prod(shape, dtype=np.int64)) if shape else 1
        if n == 0:
            return np.zeros(shape, dtype=dtype)
        inner_blob = box.get("inner")
        inner_codec = box.get_str("inner_codec")
        codec = peek_codec(inner_blob)
        if codec != inner_codec:
            raise ContainerError(
                f"corrupt {self.name} stream: inner stream claims codec "
                f"{codec!r}, header says {inner_codec!r}"
            )
        recon = get_compressor(codec).decompress_trusted(inner_blob)
        if tuple(recon.shape) != tuple(shape) or recon.dtype != dtype:
            raise ContainerError(
                f"corrupt {self.name} stream: inner reconstruction geometry "
                f"{recon.shape}/{recon.dtype} does not match header "
                f"{tuple(shape)}/{dtype}"
            )
        flat = np.ascontiguousarray(recon).ravel()
        with span("patch-apply", codec=self.name):
            apply_patch_sections(flat, box, dtype, self.name)
        return flat.reshape(shape)


def read_stream_safeguards(box: Container) -> tuple[Safeguard, ...]:
    """Parse the declared safeguards of a SAFE container (audit/report use)."""
    from .kinds import parse_safeguards

    return parse_safeguards(box.get_str("safeguards"))
