"""Safeguard evaluation engine and the shared patch-channel code path.

Every patch channel in the repo — ``TransformedCompressor``'s verify pass,
the SZ family's escape/verify patches and the ``SafeguardedCompressor``
adapter — flows through the helpers here, so there is exactly one
serialization layout and one application path:

* ``patch_idx`` — deflated ``uint64`` flat indices of patched points
* ``patch_val`` — deflated original-dtype bit-exact values
* ``n_patch``   — ``u64`` count, cross-checked at decode

:func:`compute_patch_channel` runs the declared safeguards to a fixed point:
each round evaluates every mask against the reconstruction *with patches
applied so far*; points already bit-identical to the original are never
flagged, so each round either grows the patch set or terminates.  A
compliant reconstruction costs exactly one vectorized pass per safeguard
and yields an empty channel.
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..encoding import deflate, inflate
from .kinds import Safeguard, bit_view

__all__ = [
    "PatchChannel",
    "compute_patch_channel",
    "put_patch_sections",
    "read_patch_sections",
    "apply_patch_sections",
]


@dataclass(frozen=True)
class PatchChannel:
    """Result of a safeguard evaluation pass.

    ``counts`` maps each safeguard spec to the number of points it flagged
    (first round it flagged them); ``masks`` keeps the first-round raveled
    violation mask per spec for audit reuse.
    """

    patch_idx: np.ndarray
    patch_val: np.ndarray
    counts: dict[str, int] = field(default_factory=dict)
    masks: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return int(self.patch_idx.size)


def compute_patch_channel(
    safeguards: tuple[Safeguard, ...] | list[Safeguard],
    original: np.ndarray,
    recon: np.ndarray,
) -> PatchChannel:
    """Evaluate ``safeguards`` on ``(original, recon)`` and build the patches.

    Returns sorted ``uint64`` flat indices plus the original bit-exact values
    at those points.  Applying the channel makes every declared property hold
    exactly: the fixed-point loop re-evaluates masks on the patched
    reconstruction until no safeguard flags a new point (relevant for
    pair-based kinds like monotonicity, where repairing one point can expose
    a neighbour).
    """
    x = np.ascontiguousarray(original)
    xd = np.asarray(recon)
    if x.shape != xd.shape:
        raise ValueError(
            f"safeguard evaluation needs matching shapes, got {x.shape} vs {xd.shape}"
        )
    xd = np.ascontiguousarray(xd.astype(x.dtype, copy=False))
    same = (bit_view(x) == bit_view(xd)).ravel()
    mask = np.zeros(x.size, dtype=bool)
    counts: dict[str, int] = {}
    masks: dict[str, np.ndarray] = {}
    cur = xd
    for round_no in range(x.size + 1):
        fresh_any = False
        for sg in safeguards:
            m = sg.violation_mask(x, cur).ravel() & ~same
            if round_no == 0:
                masks[sg.spec()] = m
            fresh = m & ~mask
            n_fresh = int(np.count_nonzero(fresh))
            if n_fresh:
                counts[sg.spec()] = counts.get(sg.spec(), 0) + n_fresh
                mask |= fresh
                fresh_any = True
        if not fresh_any:
            break
        cur = np.where(mask.reshape(x.shape), x, xd)
    patch_idx = np.flatnonzero(mask).astype(np.uint64)
    patch_val = x.ravel()[patch_idx.astype(np.int64)]
    return PatchChannel(patch_idx=patch_idx, patch_val=patch_val, counts=counts, masks=masks)


def put_patch_sections(box, patch_idx: np.ndarray, patch_val: np.ndarray) -> None:
    """Write the canonical patch sections into a container."""
    box.put("patch_idx", deflate(np.ascontiguousarray(patch_idx).tobytes()))
    box.put("patch_val", deflate(np.ascontiguousarray(patch_val).tobytes()))
    box.put_u64("n_patch", patch_idx.size)


def read_patch_sections(
    box, dtype: np.dtype, codec: str, n_points: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Read and validate the patch sections of a container.

    Raises ``ValueError`` (translated to ``ContainerError`` by the decode
    guard) when the three sections disagree with each other or index outside
    the array — corruption must never silently drop a guaranteed property.
    """
    n_patch = box.get_u64("n_patch")
    patch_idx = np.frombuffer(inflate(box.get("patch_idx")), dtype=np.uint64)
    patch_val = np.frombuffer(inflate(box.get("patch_val")), dtype=dtype)
    if patch_idx.size != n_patch or patch_val.size != n_patch:
        raise ValueError(f"corrupt {codec} stream: patch channel size mismatch")
    if n_points is not None and patch_idx.size and int(patch_idx.max()) >= n_points:
        raise ValueError(f"corrupt {codec} stream: patch index out of range")
    return patch_idx, patch_val


def apply_patch_sections(flat: np.ndarray, box, dtype: np.dtype, codec: str) -> np.ndarray:
    """Apply a container's patch channel to a flat reconstruction in place."""
    patch_idx, patch_val = read_patch_sections(box, dtype, codec, n_points=flat.size)
    if patch_idx.size:
        flat[patch_idx.astype(np.int64)] = patch_val
    return flat
