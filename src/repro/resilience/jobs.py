"""Crash-safe compression/decompression jobs over the write-ahead journal.

:func:`run_compress_job` and :func:`run_decompress_job` execute the same
work the plain APIs do, but journal every finished chunk
(:class:`~repro.resilience.journal.JobJournal`), so a job killed at any
instruction can be finished by :func:`resume_job` -- re-doing only the
chunks the journal has no valid record for.  The final container is
assembled by the *same* :meth:`ChunkedCompressor._assemble
<repro.core.chunked.ChunkedCompressor>` path the one-shot API uses, so an
interrupted-and-resumed job produces bytes identical to an uninterrupted
run -- the invariant the chaos harness (:mod:`repro.testing.chaos`)
enumerates kill points against.

The journal header records everything needed to rebuild the job --
compressor name, safeguard specs, degradation ladder, resilience policy,
chunk geometry, bound, and an input-file fingerprint -- so ``resume``
needs only the journal directory.
"""

from __future__ import annotations

import io as _io
import os
import time
from dataclasses import dataclass

import numpy as np

from repro.compressors.base import (
    AbsoluteBound,
    ErrorBound,
    PrecisionBound,
    RelativeBound,
)
from repro.data.io import load_array
from repro.encoding.crc import crc32c
from repro.parallel.runner import atomic_write_bytes
from repro.resilience.crashpoints import reach
from repro.resilience.journal import JobJournal
from repro.resilience.ladder import DegradationLadder
from repro.resilience.policy import JournalError

__all__ = [
    "JobResult",
    "build_job_compressor",
    "run_compress_job",
    "run_decompress_job",
    "resume_job",
]

_BOUND_KINDS = {"rel": RelativeBound, "abs": AbsoluteBound, "prec": PrecisionBound}


def _bound_to_dict(bound: ErrorBound) -> dict:
    return {"kind": bound.kind, "value": float(bound.value)}


def _bound_from_dict(spec: dict) -> ErrorBound:
    try:
        return _BOUND_KINDS[spec["kind"]](spec["value"])
    except (KeyError, TypeError) as exc:
        raise JournalError(f"journal records an unusable bound {spec!r}: {exc}") from None


def _fingerprint(path: str) -> dict:
    """Cheap input identity: size plus CRC of the first metabyte.

    Enough to catch "resumed against a different file" (the overwhelmingly
    common operator error) without re-hashing terabytes on resume.
    """
    size = os.path.getsize(path)
    with open(path, "rb") as fh:
        head = fh.read(1 << 20)
    return {"size": size, "crc": crc32c(head)}


@dataclass(frozen=True)
class JobResult:
    """Outcome of a (possibly resumed) journaled job."""

    output: str
    nbytes: int
    n_chunks: int
    #: Chunks actually (re)compressed by this invocation; the rest came
    #: straight from the journal.
    redone: int
    resumed: bool = False

    def summary(self) -> str:
        skipped = self.n_chunks - self.redone
        how = "resumed" if self.resumed else "completed"
        reuse = f", {skipped} reused from journal" if skipped else ""
        return (
            f"{how}: {self.n_chunks} chunks ({self.redone} compressed{reuse}) "
            f"-> {self.output} ({self.nbytes} bytes)"
        )


def build_job_compressor(header: dict):
    """(ChunkedCompressor, inner label) for a job header's specs.

    Shared by the CLI's journaled ``compress`` and by ``resume``, so the
    two construct byte-identically configured pipelines from one source
    of truth.
    """
    from repro.core.chunked import ChunkedCompressor

    inner: object = header.get("compressor", "SZ_T")
    label = str(inner)
    safeguards = header.get("safeguards") or []
    if safeguards:
        from repro.safeguards import SafeguardedCompressor

        inner = SafeguardedCompressor(inner, list(safeguards))
        label = f"SAFE({label}; {'; '.join(safeguards)})"
    ladder = header.get("ladder") or []
    if ladder:
        inner = DegradationLadder.with_fallbacks(inner, [str(r) for r in ladder])
        label = ">".join([label, *inner.rung_names[1:]])
    kwargs = {}
    for key, arg in (
        ("chunk_bytes", "chunk_bytes"),
        ("workers", "workers"),
        ("parity", "parity"),
        ("group_size", "group_size"),
        ("chunk_timeout", "timeout"),
        ("executor", "executor"),
    ):
        if header.get(key) is not None:
            kwargs[arg] = header[key]
    if header.get("policy"):
        kwargs["policy"] = header["policy"]
    return ChunkedCompressor(inner, **kwargs), label


def _waves(indices: list[int], width: int):
    width = max(int(width), 1)
    for start in range(0, len(indices), width):
        yield indices[start : start + width]


# -- compress ----------------------------------------------------------------


def run_compress_job(
    input_path: str,
    output_path: str,
    bound: ErrorBound,
    journal_dir: str | None = None,
    shape: tuple[int, ...] | None = None,
    dtype: str = "float32",
    **spec,
) -> JobResult:
    """Journaled compress of ``input_path`` into ``output_path``.

    ``spec`` carries the pipeline description
    (``compressor``/``safeguards``/``ladder``/``policy`` and the chunked
    knobs -- see :func:`build_job_compressor`); everything lands in the
    journal header so :func:`resume_job` can rebuild the identical
    pipeline.  The journal defaults to ``<output>.journal`` and is
    removed after a durable commit.
    """
    journal_dir = journal_dir or output_path + ".journal"
    header = {
        "kind": "compress",
        "input": os.path.abspath(input_path),
        "output": os.path.abspath(output_path),
        "shape": list(shape) if shape else None,
        "dtype": dtype,
        "bound": _bound_to_dict(bound),
        "fingerprint": _fingerprint(input_path),
        **{k: v for k, v in spec.items() if v is not None},
    }
    journal = JobJournal.create(journal_dir, header)
    return _finish_compress(journal, resumed=False)


def _finish_compress(journal: JobJournal, resumed: bool) -> JobResult:
    header = journal.header
    out_path = header["output"]
    if journal.committed and os.path.exists(out_path):
        journal.remove()
        return JobResult(out_path, os.path.getsize(out_path), len(journal.chunks),
                         redone=0, resumed=resumed)
    chunked, _label = build_job_compressor(header)
    shape = tuple(header["shape"]) if header.get("shape") else None
    data = load_array(header["input"], shape, np.dtype(header.get("dtype", "float32")))
    bound = _bound_from_dict(header["bound"])
    inner = chunked.inner
    inner._check_bound(bound)
    if data.size == 0:
        chunks: list[np.ndarray] = []
    else:
        data = np.asarray(data)
        data = chunked._check_input(
            data, allow_nonfinite=getattr(inner, "allows_nonfinite", False)
        )
        chunks = chunked._split(data)
    from repro.core.chunked import _compress_chunk

    chunked._job_started = time.perf_counter()
    n = len(chunks)
    pending = [i for i in range(n) if journal.chunk_blob(i) is None]
    for wave in _waves(pending, chunked.workers):
        blobs = chunked._map(
            _compress_chunk, [(inner, chunks[i], bound) for i in wave]
        )
        journal.record_chunks(list(zip(wave, blobs)))
    blobs = []
    for i in range(n):
        blob = journal.chunk_blob(i)
        if blob is None:  # pragma: no cover - record_chunks just wrote it
            raise JournalError(f"chunk {i} missing from journal after compress")
        blobs.append(blob)
    stream = chunked._assemble(data, chunks, blobs)
    reach("job.assembled", nbytes=len(stream))
    atomic_write_bytes(out_path, stream)
    reach("job.output-written", path=out_path)
    journal.record_commit(nbytes=len(stream), crc=crc32c(stream))
    journal.remove()
    return JobResult(out_path, len(stream), n, redone=len(pending), resumed=resumed)


# -- decompress --------------------------------------------------------------


def _decompress_chunk_bytes(blob: bytes, dtype: str) -> bytes:
    """Module-level so process-pool workers can unpickle the task."""
    from repro.core.chunked import _decompress_chunk

    return _decompress_chunk(blob).ravel().astype(np.dtype(dtype), copy=False).tobytes()


def run_decompress_job(
    input_path: str,
    output_path: str,
    journal_dir: str | None = None,
    workers: int | None = None,
) -> JobResult:
    """Journaled decompress of a (CHUNKED or monolithic) stream."""
    journal_dir = journal_dir or output_path + ".journal"
    header = {
        "kind": "decompress",
        "input": os.path.abspath(input_path),
        "output": os.path.abspath(output_path),
        "fingerprint": _fingerprint(input_path),
    }
    if workers is not None:
        header["workers"] = workers
    journal = JobJournal.create(journal_dir, header)
    return _finish_decompress(journal, resumed=False)


def _finish_decompress(journal: JobJournal, resumed: bool) -> JobResult:
    from repro.core.chunked import ChunkedCompressor, iter_chunk_blobs
    from repro.encoding.container import Container, peek_codec

    header = journal.header
    out_path = header["output"]
    if journal.committed and os.path.exists(out_path):
        journal.remove()
        return JobResult(out_path, os.path.getsize(out_path), len(journal.chunks),
                         redone=0, resumed=resumed)
    with open(header["input"], "rb") as fh:
        stream = fh.read()
    if peek_codec(stream) != "CHUNKED":
        from repro import decompress

        recon = decompress(stream)
        _write_array_atomic(out_path, recon)
        journal.record_commit(nbytes=recon.nbytes)
        journal.remove()
        return JobResult(out_path, recon.nbytes, 1, redone=1, resumed=resumed)
    box = Container.from_bytes(stream)
    shape, dtype = box.get_shape("shape"), box.get_dtype("dtype")
    chunk_blobs = list(iter_chunk_blobs(stream))
    n = len(chunk_blobs)
    chunked = ChunkedCompressor(
        executor="thread", workers=int(header.get("workers") or 1)
    )
    pending = [i for i in range(n) if journal.chunk_blob(i) is None]
    for wave in _waves(pending, chunked.workers):
        parts = chunked._map(
            _decompress_chunk_bytes,
            [(chunk_blobs[i], dtype.name) for i in wave],
        )
        journal.record_chunks(list(zip(wave, parts)))
    flat = b"".join(journal.chunk_blob(i) for i in range(n))
    recon = np.frombuffer(flat, dtype=dtype).reshape(shape)
    reach("job.assembled", nbytes=recon.nbytes)
    _write_array_atomic(out_path, recon)
    reach("job.output-written", path=out_path)
    journal.record_commit(nbytes=recon.nbytes)
    journal.remove()
    return JobResult(out_path, recon.nbytes, n, redone=len(pending), resumed=resumed)


def _write_array_atomic(path: str, data: np.ndarray) -> None:
    """``save_array`` semantics through the atomic temp+rename+fsync path."""
    if path.endswith(".npy"):
        buf = _io.BytesIO()
        np.save(buf, data)
        payload = buf.getvalue()
    else:
        arr = np.ascontiguousarray(data)
        payload = arr.astype(arr.dtype.newbyteorder("<"), copy=False).tobytes()
    atomic_write_bytes(path, payload)


# -- resume ------------------------------------------------------------------


def resume_job(journal_dir: str) -> JobResult:
    """Finish the interrupted job recorded at ``journal_dir``.

    Validates the journal and the input fingerprint, re-does only chunks
    without a valid journal record, and commits the identical output an
    uninterrupted run would have produced.  Safe to call repeatedly; a
    fully committed journal is simply cleaned up.
    """
    journal = JobJournal.open(journal_dir)
    header = journal.header
    kind = header.get("kind")
    input_path = header.get("input")
    if not input_path or not os.path.exists(input_path):
        raise JournalError(
            f"journal {journal_dir!r} references missing input {input_path!r}"
        )
    want = header.get("fingerprint")
    if want and _fingerprint(input_path) != want:
        raise JournalError(
            f"input {input_path!r} changed since the journal was written; "
            f"refusing to resume against different data"
        )
    if kind == "compress":
        return _finish_compress(journal, resumed=True)
    if kind == "decompress":
        return _finish_decompress(journal, resumed=True)
    raise JournalError(f"journal {journal_dir!r} records unknown job kind {kind!r}")
