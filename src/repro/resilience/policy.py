"""Resilience policy: one object for every retry/deadline/degradation knob.

:class:`ResiliencePolicy` unifies the ad-hoc knobs that grew across the
pipeline -- :class:`~repro.core.chunked.ChunkedCompressor`'s watchdog
(``timeout``/``timeout_retries``/``timeout_backoff_s``),
:func:`~repro.parallel.runner.atomic_write_bytes`'s I/O retries, and the
per-rank deadlines of the SPMD runner -- plus the new job-level controls:
a whole-job deadline, a memory budget that caps concurrent chunk workers,
a failure-rate circuit breaker, and a graceful-degradation codec ladder.

Policies parse from compact spec strings (mirroring the safeguards
grammar), so the CLI and job journals can carry them as text::

    retries=3;backoff=0.1;jitter=0.5;chunk-timeout=2;job-timeout=60;
    memory=256M;breaker=0.5/10;ladder=SZ_T>GZIP

Every field is optional; :meth:`ResiliencePolicy.spec` renders the
canonical round-trippable form.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field, replace

__all__ = [
    "ChunkIncident",
    "CircuitBreaker",
    "CircuitOpenError",
    "JobDeadlineError",
    "JournalError",
    "LadderExhaustedError",
    "MemoryBudgetError",
    "ResilienceError",
    "ResiliencePolicy",
    "ResilienceReport",
    "parse_policy",
]


class ResilienceError(RuntimeError):
    """Base class for job-level resilience failures.

    Deliberately *not* a :class:`~repro.encoding.container.StreamError`:
    these are environment/budget faults (deadlines, breakers, exhausted
    ladders, journal damage), never evidence that stream bytes are bad.
    """


class CircuitOpenError(ResilienceError):
    """The failure-rate circuit breaker tripped; the job stopped early."""


class JobDeadlineError(ResilienceError):
    """The whole job blew through its ``job-timeout`` budget."""


class MemoryBudgetError(ResilienceError):
    """The memory budget cannot accommodate even one chunk worker."""


class LadderExhaustedError(ResilienceError):
    """Every rung of the degradation ladder failed for a chunk."""


class JournalError(ResilienceError):
    """A job journal is missing, torn beyond use, or inconsistent."""


def _parse_size(text: str) -> int:
    scale = {"K": 2**10, "M": 2**20, "G": 2**30}.get(text[-1:].upper(), 1)
    digits = text[:-1] if scale != 1 else text
    value = int(digits) * scale
    if value <= 0:
        raise ValueError(f"size must be positive: {text!r}")
    return value


def _format_size(nbytes: int) -> str:
    for suffix, scale in (("G", 2**30), ("M", 2**20), ("K", 2**10)):
        if nbytes % scale == 0:
            return f"{nbytes // scale}{suffix}"
    return str(nbytes)


@dataclass(frozen=True)
class ResiliencePolicy:
    """Declarative failure-handling policy for a compression job.

    Parameters
    ----------
    retries:
        Retry budget for a failed/hung chunk attempt (maps onto the
        chunked watchdog's ``timeout_retries``).
    backoff_s:
        Initial exponential-backoff pause between retries.
    jitter:
        Backoff randomization fraction in ``[0, 1]``: each pause is
        scaled by a factor drawn uniformly from ``[1-jitter, 1+jitter]``
        using a deterministic per-chunk RNG seeded from ``seed``, so two
        runs with the same policy still behave identically.
    chunk_timeout_s:
        Per-chunk watchdog deadline (None = no watchdog).
    job_timeout_s:
        Whole-job deadline; breached jobs raise :class:`JobDeadlineError`
        at the next chunk boundary.
    memory_budget:
        Approximate peak-memory budget in bytes.  Caps concurrent chunk
        workers (each worker is charged ``4 x chunk_bytes`` for its input
        span, transform workspace and output); a budget below one
        worker's charge raises :class:`MemoryBudgetError` up front.
    breaker_threshold:
        Failure-rate circuit breaker: once at least ``breaker_window``
        chunk outcomes are known and the failure fraction exceeds this,
        the job stops with :class:`CircuitOpenError` instead of grinding
        through serial retries of a systematically failing codec.
    breaker_window:
        Minimum chunk outcomes observed before the breaker may trip.
    ladder:
        Degradation codec chain (registry names) tried in order when the
        primary codec fails; see :class:`repro.resilience.DegradationLadder`.
    seed:
        Seed for the deterministic jitter RNG.
    """

    retries: int = 2
    backoff_s: float = 0.05
    jitter: float = 0.0
    chunk_timeout_s: float | None = None
    job_timeout_s: float | None = None
    memory_budget: int | None = None
    breaker_threshold: float | None = None
    breaker_window: int = 10
    ladder: tuple[str, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_s < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff_s}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        for name in ("chunk_timeout_s", "job_timeout_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.memory_budget is not None and self.memory_budget <= 0:
            raise ValueError(f"memory budget must be positive, got {self.memory_budget}")
        if self.breaker_threshold is not None and not 0.0 < self.breaker_threshold <= 1.0:
            raise ValueError(
                f"breaker threshold must be in (0, 1], got {self.breaker_threshold}"
            )
        if self.breaker_window < 1:
            raise ValueError(f"breaker window must be >= 1, got {self.breaker_window}")

    # -- spec round-trip -----------------------------------------------------

    _DEFAULTS = None  # filled in after class creation

    def spec(self) -> str:
        """Canonical spec string; ``parse_policy(p.spec()) == p``."""
        parts = []
        if self.retries != 2:
            parts.append(f"retries={self.retries}")
        if self.backoff_s != 0.05:
            parts.append(f"backoff={self.backoff_s:g}")
        if self.jitter:
            parts.append(f"jitter={self.jitter:g}")
        if self.chunk_timeout_s is not None:
            parts.append(f"chunk-timeout={self.chunk_timeout_s:g}")
        if self.job_timeout_s is not None:
            parts.append(f"job-timeout={self.job_timeout_s:g}")
        if self.memory_budget is not None:
            parts.append(f"memory={_format_size(self.memory_budget)}")
        if self.breaker_threshold is not None:
            parts.append(f"breaker={self.breaker_threshold:g}/{self.breaker_window}")
        if self.ladder:
            parts.append("ladder=" + ">".join(self.ladder))
        if self.seed:
            parts.append(f"seed={self.seed}")
        return ";".join(parts)

    def backoff_for(self, attempt: int, index: int = 0) -> float:
        """Backoff pause before retry ``attempt`` (1-based) of chunk ``index``.

        Exponential (``backoff_s * 2**(attempt-1)``) with deterministic
        jitter: the RNG is seeded from ``(seed, index, attempt)`` so the
        schedule is reproducible yet decorrelated across chunks.
        """
        base = self.backoff_s * 2 ** max(attempt - 1, 0)
        if not self.jitter or not base:
            return base
        rng = random.Random((self.seed << 24) ^ (index << 8) ^ attempt)
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))

    def max_workers(self, workers: int, chunk_bytes: int) -> int:
        """Worker cap under the memory budget (identity when unbudgeted)."""
        if self.memory_budget is None:
            return workers
        per_worker = 4 * chunk_bytes
        if per_worker > self.memory_budget:
            raise MemoryBudgetError(
                f"memory budget {_format_size(self.memory_budget)} below one "
                f"worker's ~{_format_size(per_worker)} charge (4 x chunk_bytes); "
                f"shrink chunk_bytes or raise the budget"
            )
        return max(1, min(workers, self.memory_budget // per_worker))

    def breaker(self) -> "CircuitBreaker | None":
        if self.breaker_threshold is None:
            return None
        return CircuitBreaker(self.breaker_threshold, self.breaker_window)


def parse_policy(text: str) -> ResiliencePolicy:
    """Parse a policy spec string (see module docstring for the grammar)."""
    policy = ResiliencePolicy()
    text = text.strip()
    if not text:
        return policy
    try:
        for part in text.split(";"):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"bad policy item {part!r}; expected key=value")
            key, _, value = part.partition("=")
            key, value = key.strip(), value.strip()
            if key == "retries":
                policy = replace(policy, retries=int(value))
            elif key == "backoff":
                policy = replace(policy, backoff_s=float(value))
            elif key == "jitter":
                policy = replace(policy, jitter=float(value))
            elif key == "chunk-timeout":
                policy = replace(policy, chunk_timeout_s=float(value))
            elif key == "job-timeout":
                policy = replace(policy, job_timeout_s=float(value))
            elif key == "memory":
                policy = replace(policy, memory_budget=_parse_size(value))
            elif key == "breaker":
                rate, _, window = value.partition("/")
                policy = replace(
                    policy,
                    breaker_threshold=float(rate),
                    breaker_window=int(window) if window else 10,
                )
            elif key == "ladder":
                rungs = tuple(r.strip() for r in value.split(">") if r.strip())
                if not rungs:
                    raise ValueError(f"empty ladder in {part!r}")
                policy = replace(policy, ladder=rungs)
            elif key == "seed":
                policy = replace(policy, seed=int(value))
            else:
                raise ValueError(
                    f"unknown policy key {key!r}; expected retries, backoff, "
                    f"jitter, chunk-timeout, job-timeout, memory, breaker, "
                    f"ladder or seed"
                )
    except ValueError as exc:
        raise ValueError(f"bad resilience policy {text!r}: {exc}") from None
    return policy


class CircuitBreaker:
    """Sliding-window failure-rate breaker over chunk outcomes.

    Record every outcome with :meth:`record`; once at least ``window``
    outcomes are known and the failure fraction over the most recent
    ``window`` exceeds ``threshold``, :attr:`tripped` turns true and
    stays true (a tripped breaker never closes itself -- the job is
    expected to stop).
    """

    def __init__(self, threshold: float, window: int) -> None:
        self.threshold = float(threshold)
        self.window = int(window)
        self._recent: deque[bool] = deque(maxlen=self.window)
        self.failures = 0
        self.observed = 0
        self.tripped = False

    def record(self, ok: bool) -> bool:
        """Record one outcome; returns the (possibly new) tripped state."""
        self.observed += 1
        self.failures += 0 if ok else 1
        self._recent.append(ok)
        if (
            not self.tripped
            and len(self._recent) >= self.window
            and (self._recent.count(False) / len(self._recent)) > self.threshold
        ):
            self.tripped = True
        return self.tripped

    def describe(self) -> str:
        recent = self._recent.count(False)
        return (
            f"{recent}/{len(self._recent)} recent chunk failures exceeds "
            f"breaker threshold {self.threshold:g} (window {self.window}; "
            f"{self.failures}/{self.observed} failures overall)"
        )


# -- incident reporting ------------------------------------------------------


@dataclass(frozen=True)
class ChunkIncident:
    """One resilience event on one chunk: a retry, timeout or fallback."""

    index: int
    kind: str  # "retry" | "timeout" | "fallback"
    detail: str = ""


@dataclass(frozen=True)
class ResilienceReport:
    """What the resilience machinery had to do during one compress call.

    All-quiet runs have ``incidents == ()`` and every counter zero; the
    report then prints as a single reassuring line.
    """

    n_chunks: int
    retried: int = 0
    timed_out: int = 0
    fallbacks: int = 0
    breaker_tripped: bool = False
    incidents: tuple[ChunkIncident, ...] = field(default=())

    @property
    def quiet(self) -> bool:
        return not (self.retried or self.timed_out or self.fallbacks
                    or self.breaker_tripped)

    def summary(self) -> str:
        if self.quiet:
            return f"all {self.n_chunks} chunks clean on the first attempt"
        bits = []
        if self.timed_out:
            bits.append(f"{self.timed_out} timed out")
        if self.retried:
            bits.append(f"{self.retried} retried")
        if self.fallbacks:
            bits.append(f"{self.fallbacks} fell back down the codec ladder")
        if self.breaker_tripped:
            bits.append("circuit breaker tripped")
        return f"{self.n_chunks} chunks: " + ", ".join(bits)

    def to_dict(self) -> dict:
        return {
            "n_chunks": self.n_chunks,
            "retried": self.retried,
            "timed_out": self.timed_out,
            "fallbacks": self.fallbacks,
            "breaker_tripped": self.breaker_tripped,
            "incidents": [
                {"index": i.index, "kind": i.kind, "detail": i.detail}
                for i in self.incidents
            ],
        }
