"""Graceful-degradation codec ladder.

:class:`DegradationLadder` wraps an ordered chain of compressors.  Each
compress call walks the chain: the first rung that produces a stream
wins; a rung that raises, exceeds the per-attempt timeout, or (with
``verify``) violates the requested relative bound is abandoned and the
next rung tries.  The produced stream is the winning rung's own
container, completely unchanged -- so decompression needs no knowledge of
the ladder and a mixed-codec CHUNKED payload decodes like any other.

The canonical final rung is ``GZIP`` (:class:`repro.LosslessDeflate`):
lossless storage accepts every bound kind and satisfies any error bound
vacuously, so a ladder ending in it cannot leave data uncompressed short
of an environment failure.

Fallbacks are observable: each one bumps the ``resilience.fallbacks``
counter and emits a ``codec-fallback`` event (both propagate back from
process-pool workers), and :class:`~repro.core.chunked.ChunkedCompressor`
records the per-chunk winning codec in the stream itself (the
``chunk_codecs`` section) so ``stats``/``explain``/``info`` can show
which chunks degraded long after the run.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError

import numpy as np

from repro.compressors.base import Compressor, ErrorBound, RelativeBound
from repro.observe.events import emit as emit_event
from repro.observe.metrics import metrics
from repro.resilience.policy import LadderExhaustedError

__all__ = ["DegradationLadder"]


class DegradationLadder(Compressor):
    """Compressor chain with automatic per-call fallback.

    Parameters
    ----------
    rungs:
        Compressor instances or registry names, tried in order.  At least
        one rung is required; ending with ``"GZIP"`` makes the ladder
        total (lossless storage never fails on finite input).
    attempt_timeout_s:
        Wall-clock budget per rung attempt; a rung that overruns is
        abandoned (its worker thread orphaned) and counts as a failure.
    verify:
        With a :class:`RelativeBound`, decode each candidate stream and
        fall through when the achieved max relative error exceeds the
        bound -- turning silent bound violations into fallbacks.
    """

    name = "LADDER"

    @staticmethod
    def with_fallbacks(primary, fallbacks) -> "DegradationLadder":
        """``primary`` plus ``fallbacks``, dropping consecutive duplicate
        names (a primary re-listed as its own first fallback adds
        nothing -- same-codec retries belong to the retry policy)."""
        rungs: list = [primary]
        last = primary if isinstance(primary, str) else primary.name
        for rung in fallbacks:
            rung_name = rung if isinstance(rung, str) else rung.name
            if rung_name != last:
                rungs.append(rung)
                last = rung_name
        return DegradationLadder(rungs)

    def __init__(
        self,
        rungs=("SZ_T", "GZIP"),
        attempt_timeout_s: float | None = None,
        verify: bool = False,
    ) -> None:
        rungs = list(rungs) if not isinstance(rungs, (str, Compressor)) else [rungs]
        if not rungs:
            raise ValueError("a degradation ladder needs at least one rung")
        if attempt_timeout_s is not None and attempt_timeout_s <= 0:
            raise ValueError(f"attempt_timeout_s must be positive, got {attempt_timeout_s}")
        self._rungs = rungs
        self.attempt_timeout_s = attempt_timeout_s
        self.verify = bool(verify)
        #: Fallbacks taken by the most recent compress() in this process.
        self.last_fallbacks = 0

    # -- configuration -------------------------------------------------------

    @property
    def rungs(self) -> tuple[Compressor, ...]:
        """Rung instances, resolving registry names on first use."""
        from repro.compressors.base import get_compressor

        self._rungs = [
            get_compressor(r) if isinstance(r, str) else r for r in self._rungs
        ]
        return tuple(self._rungs)

    @property
    def rung_names(self) -> tuple[str, ...]:
        return tuple(
            r if isinstance(r, str) else r.name for r in self._rungs
        )

    @property
    def chain(self) -> str:
        """The ladder as a spec string: ``"SZ_T>GZIP"``."""
        return ">".join(self.rung_names)

    @property
    def supported_bounds(self) -> tuple[type, ...]:  # type: ignore[override]
        seen: dict[type, None] = {}
        for rung in self.rungs:
            for kind in rung.supported_bounds:
                seen[kind] = None
        return tuple(seen)

    @property
    def allows_nonfinite(self) -> bool:  # type: ignore[override]
        return all(getattr(r, "allows_nonfinite", False) for r in self.rungs)

    # -- compression ---------------------------------------------------------

    def _attempt(self, rung: Compressor, data: np.ndarray, bound: ErrorBound) -> bytes:
        """One rung attempt, under ``attempt_timeout_s`` when configured."""
        if self.attempt_timeout_s is None:
            return rung.compress(data, bound)
        pool = ThreadPoolExecutor(max_workers=1)
        fut = pool.submit(rung.compress, data, bound)
        try:
            blob = fut.result(timeout=self.attempt_timeout_s)
        except FuturesTimeoutError:
            fut.cancel()
            # Abandon, never join: the worker thread may be wedged.
            pool.shutdown(wait=False, cancel_futures=True)
            raise TimeoutError(
                f"{rung.name} exceeded the {self.attempt_timeout_s}s rung budget"
            ) from None
        pool.shutdown(wait=False)
        return blob

    def _verify(self, rung: Compressor, blob: bytes, data: np.ndarray,
                bound: ErrorBound) -> None:
        """Raise when the candidate stream violates a relative bound."""
        if not self.verify or not isinstance(bound, RelativeBound):
            return
        recon = rung.decompress(blob).astype(np.float64).ravel()
        x = data.astype(np.float64).ravel()
        err = np.abs(recon - x)
        # Same tolerance discipline as the audit: grade against eps-padded
        # bound so float32 round-off is not misread as a violation.
        tol = bound.value * (1 + 1e-12) + np.finfo(np.float64).tiny
        bad = err > tol * np.abs(x)
        if bad.any():
            raise ValueError(
                f"{rung.name} stream violates rel bound {bound.value:g} at "
                f"{int(bad.sum())} point(s) (max rel err "
                f"{float((err[bad] / np.abs(x[bad])).max()):.3e})"
            )

    def compress(self, data: np.ndarray, bound: ErrorBound) -> bytes:
        self._check_bound(bound)
        self.last_fallbacks = 0
        failures: list[str] = []
        rungs = self.rungs
        for pos, rung in enumerate(rungs):
            try:
                if not isinstance(bound, rung.supported_bounds):
                    raise TypeError(
                        f"{rung.name} does not accept {type(bound).__name__}"
                    )
                blob = self._attempt(rung, data, bound)
                self._verify(rung, blob, data, bound)
            except Exception as exc:  # noqa: BLE001 - each rung failure is a
                # fallback trigger by design; BaseException (kills,
                # simulated crash points) still propagates.
                reason = f"{type(exc).__name__}: {exc}"
                failures.append(f"{rung.name}: {reason}")
                if pos + 1 < len(rungs):
                    self.last_fallbacks += 1
                    metrics().counter("resilience.fallbacks").inc()
                    emit_event(
                        "codec-fallback",
                        from_codec=rung.name,
                        to_codec=rungs[pos + 1].name,
                        reason=reason[:200],
                    )
                continue
            if pos:
                metrics().counter("resilience.degraded_chunks").inc()
            return blob
        raise LadderExhaustedError(
            "every rung of the degradation ladder failed: " + "; ".join(failures)
        )

    def decompress(self, blob: bytes) -> np.ndarray:
        # Streams self-identify as the winning rung's codec; dispatch
        # generically so a ladder instance round-trips like any codec.
        from repro import decompress

        return decompress(blob)
