"""Named crash points for deterministic crash-consistency testing.

Production code calls :func:`reach` at every durability boundary -- after
a journal record is fsynced, after a temp file is written, after a
rename, after a commit mark.  With no hook installed the call is a
single attribute load and compare (nanoseconds), so the points stay in
the shipped code permanently rather than living in a test-only fork.

The chaos harness (:mod:`repro.testing.chaos`) installs a hook that
either records every point reached (to enumerate the fault space) or
raises a simulated kill at exactly one of them, then asserts the journal
recovers.  Hooks raise ``BaseException`` subclasses on purpose: recovery
code that catches ``Exception`` must not be able to swallow a kill.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable

__all__ = ["crash_hook", "reach"]

_hook: Callable[[str, dict], None] | None = None


def reach(name: str, **info) -> None:
    """Mark a crash point; invokes the installed hook, if any.

    ``name`` identifies the durability boundary (e.g. ``"io.renamed"``,
    ``"journal.chunk-recorded"``); ``info`` carries context (path, chunk
    index) the hook may log.  No hook installed -> no-op.
    """
    if _hook is not None:
        _hook(name, info)


@contextmanager
def crash_hook(fn: Callable[[str, dict], None]):
    """Install ``fn`` as the process-wide crash-point hook for the block.

    Nested installs restore the previous hook on exit, so a recorder can
    wrap a killer (or vice versa) in the same test.
    """
    global _hook
    prev = _hook
    _hook = fn
    try:
        yield fn
    finally:
        _hook = prev
