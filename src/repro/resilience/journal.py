"""Write-ahead job journal for crash-safe, resumable compression jobs.

A journal is a directory next to the job's output::

    out.rpz.journal/
        manifest.jsonl      # append-only: job header, chunk records, commit
        chunk_00000.bin     # finished per-chunk streams (atomic writes)
        chunk_00001.bin
        ...

Durability discipline (the invariants the chaos harness enumerates):

* every ``chunk_<i>.bin`` is written with
  :func:`~repro.parallel.runner.atomic_write_bytes` (temp + fsync +
  rename + parent-dir fsync) *before* its manifest record is appended,
  so a manifest record implies a durable, complete part file;
* manifest appends are flushed and fsynced once per wave of chunks, so a
  kill can tear at most the final line -- the reader ignores a torn tail;
* the ``commit`` record is appended only after the final container has
  been atomically renamed into place, so "commit present" implies "output
  durable".

A job killed at *any* instruction therefore leaves either (a) no journal,
(b) a journal whose recorded chunks are all valid, or (c) a committed
journal plus the finished output -- and ``repro-compress resume`` handles
all three.  Chunk records carry the blob's CRC-32C; resume re-validates
every part file and silently re-does any that fail, so even torn part
files (impossible under POSIX rename semantics, cheap to tolerate
anyway) only cost time, never correctness.
"""

from __future__ import annotations

import json
import os
import shutil

from repro.encoding.crc import crc32c
from repro.resilience.crashpoints import reach
from repro.resilience.policy import JournalError

__all__ = ["JobJournal"]

MANIFEST = "manifest.jsonl"


def _part_name(index: int) -> str:
    return f"chunk_{index:05d}.bin"


def _fsync_dir(path: str) -> None:
    """Flush a directory's entry table to disk (POSIX only, best-effort)."""
    if os.name != "posix":
        return
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass  # some filesystems refuse fsync on directories
    finally:
        os.close(fd)


class JobJournal:
    """One resumable job's write-ahead journal (see module docstring)."""

    def __init__(self, root: str, header: dict, chunks: dict[int, dict],
                 committed: bool) -> None:
        self.root = root
        self.header = header
        self.chunks = chunks
        self.committed = committed

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def create(cls, root: str, header: dict) -> "JobJournal":
        """Start a fresh journal at ``root`` with a durable job header."""
        if os.path.exists(os.path.join(root, MANIFEST)):
            raise JournalError(
                f"journal already exists at {root!r}; resume it or remove it"
            )
        os.makedirs(root, exist_ok=True)
        journal = cls(root, dict(header), {}, committed=False)
        journal._append([{"rec": "job", **header}])
        _fsync_dir(os.path.dirname(os.path.abspath(root)) or ".")
        reach("journal.created", root=root)
        return journal

    @classmethod
    def open(cls, root: str) -> "JobJournal":
        """Load a journal from disk, tolerating a torn trailing line."""
        path = os.path.join(root, MANIFEST)
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except OSError as exc:
            raise JournalError(f"no readable journal at {root!r}: {exc}") from None
        records: list[dict] = []
        lines = raw.split(b"\n")
        for pos, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except (ValueError, UnicodeDecodeError):
                if pos >= len(lines) - 2:
                    break  # torn tail from a mid-append kill: ignore
                raise JournalError(
                    f"journal {root!r} is corrupt at line {pos + 1}"
                ) from None
        if not records or records[0].get("rec") != "job":
            raise JournalError(f"journal {root!r} has no job header")
        header = {k: v for k, v in records[0].items() if k != "rec"}
        chunks: dict[int, dict] = {}
        committed = False
        for rec in records[1:]:
            kind = rec.get("rec")
            if kind == "chunk":
                chunks[int(rec["index"])] = rec
            elif kind == "commit":
                committed = True
        return cls(root, header, chunks, committed)

    def remove(self) -> None:
        """Delete the journal directory (after a durable commit)."""
        reach("journal.cleanup", root=self.root)
        shutil.rmtree(self.root, ignore_errors=True)

    # -- appends -------------------------------------------------------------

    def _append(self, records: list[dict]) -> None:
        text = "".join(json.dumps(rec, sort_keys=True) + "\n" for rec in records)
        with open(os.path.join(self.root, MANIFEST), "ab") as fh:
            fh.write(text.encode("utf-8"))
            fh.flush()
            os.fsync(fh.fileno())

    def record_chunks(self, items: list[tuple[int, bytes]]) -> None:
        """Persist a wave of finished chunks: part files, then one fsynced
        batch of manifest records."""
        from repro.parallel.runner import atomic_write_bytes

        records = []
        for index, blob in items:
            atomic_write_bytes(os.path.join(self.root, _part_name(index)), blob)
            reach("journal.part-written", index=index)
            records.append({
                "rec": "chunk",
                "index": int(index),
                "len": len(blob),
                "crc": crc32c(blob),
            })
        if not records:
            return
        self._append(records)
        reach("journal.chunks-recorded", count=len(records))
        for rec in records:
            self.chunks[int(rec["index"])] = rec

    def record_commit(self, **info) -> None:
        """Mark the job complete (call only after the output is durable)."""
        self._append([{"rec": "commit", **info}])
        self.committed = True
        reach("journal.commit-recorded", root=self.root)

    # -- reads ---------------------------------------------------------------

    def chunk_blob(self, index: int) -> bytes | None:
        """The recorded chunk's bytes, or None when absent or invalid.

        A part file that is missing, short, or fails its recorded CRC is
        treated exactly like an unfinished chunk: the caller re-does it.
        """
        rec = self.chunks.get(index)
        if rec is None:
            return None
        try:
            with open(os.path.join(self.root, _part_name(index)), "rb") as fh:
                blob = fh.read()
        except OSError:
            return None
        if len(blob) != rec.get("len") or crc32c(blob) != rec.get("crc"):
            return None
        return blob

    def finished(self, n_chunks: int) -> list[int]:
        """Indices whose part files are present and valid."""
        return [i for i in range(n_chunks) if self.chunk_blob(i) is not None]
