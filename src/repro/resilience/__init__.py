"""Job-level resilience: policies, degradation ladders, resumable jobs.

Three layers (see ``docs/resilience.md``):

* :class:`ResiliencePolicy` -- one declarative object for every
  retry/backoff/deadline/memory/breaker knob, parsed from spec strings
  (``parse_policy("retries=3;chunk-timeout=2;ladder=SZ_T>GZIP")``) and
  accepted by :class:`repro.core.chunked.ChunkedCompressor` and the CLI's
  ``--policy``.
* :class:`DegradationLadder` -- a compressor chain that falls back rung
  by rung on codec failure, timeout or bound violation, recording every
  fallback in metrics, events and the stream itself.
* :mod:`~repro.resilience.jobs` -- crash-safe journaled
  compress/decompress (:func:`run_compress_job`, :func:`resume_job`)
  over the write-ahead :class:`~repro.resilience.journal.JobJournal`,
  with named crash points (:mod:`~repro.resilience.crashpoints`) that
  the chaos harness in :mod:`repro.testing.chaos` enumerates.
"""

from repro.resilience.crashpoints import crash_hook, reach
from repro.resilience.journal import JobJournal
from repro.resilience.jobs import (
    JobResult,
    build_job_compressor,
    resume_job,
    run_compress_job,
    run_decompress_job,
)
from repro.resilience.ladder import DegradationLadder
from repro.resilience.policy import (
    ChunkIncident,
    CircuitBreaker,
    CircuitOpenError,
    JobDeadlineError,
    JournalError,
    LadderExhaustedError,
    MemoryBudgetError,
    ResilienceError,
    ResiliencePolicy,
    ResilienceReport,
    parse_policy,
)

__all__ = [
    "ChunkIncident",
    "CircuitBreaker",
    "CircuitOpenError",
    "DegradationLadder",
    "JobDeadlineError",
    "JobJournal",
    "JobResult",
    "JournalError",
    "LadderExhaustedError",
    "MemoryBudgetError",
    "ResilienceError",
    "ResiliencePolicy",
    "ResilienceReport",
    "build_job_compressor",
    "crash_hook",
    "parse_policy",
    "reach",
    "resume_job",
    "run_compress_job",
    "run_decompress_job",
]
