"""repro -- point-wise relative-error-bounded lossy compression.

Reproduction of Liang, Di, Tao, Chen & Cappello, *An Efficient
Transformation Scheme for Lossy Data Compression with Point-wise Relative
Error Bound* (IEEE CLUSTER 2018).

Quickstart::

    import numpy as np
    from repro import compress, decompress, RelativeBound

    data = np.random.default_rng(0).lognormal(size=(64, 64, 64)).astype(np.float32)
    blob = compress(data, RelativeBound(1e-2))          # SZ_T by default
    recon = decompress(blob)
    assert np.all(np.abs(recon - data) <= 1e-2 * np.abs(data))

Every compressor evaluated by the paper is available through
:func:`get_compressor`: ``SZ_T``, ``ZFP_T`` (the paper's contribution),
``SZ_ABS``, ``SZ_PWR``, ``ZFP_A``, ``ZFP_P``, ``FPZIP``, ``ISABELA``.
"""

from __future__ import annotations

import numpy as np

from repro.compressors import (
    AbsoluteBound,
    Compressor,
    ErrorBound,
    FpzipCompressor,
    IsabelaCompressor,
    PrecisionBound,
    RateBound,
    RelativeBound,
    SZ2Compressor,
    SZ3Compressor,
    SZCompressor,
    SZPointwiseRelative,
    UnsupportedBound,
    ZFPCompressor,
    available_compressors,
    get_compressor,
    register_compressor,
)
from repro.compressors.lossless import LosslessDeflate
from repro.core import (
    ChunkedCompressor,
    ChunkFailure,
    ChunkTimeoutError,
    LogTransform,
    RecoveryReport,
    TransformedCompressor,
    make_sz_t,
    make_zfp_t,
    recover_array,
)
from repro.encoding.container import (
    ChecksumError,
    Container,
    ContainerError,
    StreamError,
    TruncatedStreamError,
    peek_codec,
)
from repro.resilience import (
    DegradationLadder,
    LadderExhaustedError,
    ResilienceError,
    ResiliencePolicy,
    ResilienceReport,
    parse_policy,
    resume_job,
    run_compress_job,
    run_decompress_job,
)
from repro.safeguards import Safeguard, SafeguardedCompressor, parse_safeguard

__version__ = "1.0.0"

__all__ = [
    "AbsoluteBound",
    "ChecksumError",
    "ChunkFailure",
    "ChunkTimeoutError",
    "ChunkedCompressor",
    "Compressor",
    "Container",
    "ContainerError",
    "DegradationLadder",
    "ErrorBound",
    "LadderExhaustedError",
    "FpzipCompressor",
    "IsabelaCompressor",
    "LogTransform",
    "LosslessDeflate",
    "PrecisionBound",
    "RateBound",
    "RecoveryReport",
    "RelativeBound",
    "ResilienceError",
    "ResiliencePolicy",
    "ResilienceReport",
    "Safeguard",
    "SafeguardedCompressor",
    "StreamError",
    "TruncatedStreamError",
    "SZ2Compressor",
    "SZ3Compressor",
    "SZCompressor",
    "SZPointwiseRelative",
    "TransformedCompressor",
    "UnsupportedBound",
    "ZFPCompressor",
    "__version__",
    "available_compressors",
    "compress",
    "decompress",
    "get_compressor",
    "make_sz_t",
    "make_zfp_t",
    "parse_policy",
    "parse_safeguard",
    "recover_array",
    "register_compressor",
    "repair_stream",
    "resume_job",
    "run_compress_job",
    "run_decompress_job",
    "verify_stream",
]

# -- registry ---------------------------------------------------------------

register_compressor("SZ_ABS", SZCompressor)
register_compressor("SZ_PWR", SZPointwiseRelative)
register_compressor("ZFP_A", lambda: ZFPCompressor("accuracy"))
register_compressor("ZFP_P", lambda: ZFPCompressor("precision"))
register_compressor("ZFP_R", lambda: ZFPCompressor("rate"))
register_compressor("FPZIP", FpzipCompressor)
register_compressor("GZIP", LosslessDeflate)
register_compressor("ISABELA", IsabelaCompressor)
register_compressor("SZ_T", make_sz_t)
register_compressor("SZ2_ABS", SZ2Compressor)
register_compressor(
    "SZ2_T", lambda: TransformedCompressor(SZ2Compressor())
)
register_compressor("SZ3_ABS", SZ3Compressor)
register_compressor(
    "SZ3_T", lambda: TransformedCompressor(SZ3Compressor())
)
register_compressor("ZFP_T", make_zfp_t)
# Thread executor: registry instances serve generic decompress() dispatch,
# which may run inside worker threads where forking a process pool is
# unsafe.  Chunk streams decode identically under any executor.
register_compressor("CHUNKED", lambda: ChunkedCompressor(executor="thread"))
# Decode-only instance: safeguarded streams carry their declared properties
# and patches inline, so dispatch needs no constructor arguments.
register_compressor("SAFE", SafeguardedCompressor)


def compress(
    data: np.ndarray,
    bound: ErrorBound,
    compressor: str | Compressor = "SZ_T",
) -> bytes:
    """Compress ``data`` under ``bound`` with the named compressor.

    ``SZ_T`` (the paper's best-performing configuration) is the default.
    """
    if isinstance(compressor, str):
        compressor = get_compressor(compressor)
    return compressor.compress(data, bound)


def decompress(blob: bytes) -> np.ndarray:
    """Reconstruct an array from any stream produced by :func:`compress`.

    The codec is dispatched from the container header, so callers do not
    need to remember which compressor produced the bytes.  Corrupt or
    truncated streams raise :class:`StreamError` subclasses; v2 streams
    are checksum-verified before any decoding happens.
    """
    # Peek the codec name from the header only -- the dispatched
    # compressor immediately re-parses with full CRC verification, so a
    # complete verifying parse here would hash every byte twice.  If the
    # header bytes are damaged, fall back to the verifying parse so
    # checksummed streams report ChecksumError rather than a structural
    # misread of corrupt header fields.
    try:
        codec = peek_codec(blob)
        compressor = get_compressor(codec)
    except (StreamError, KeyError):
        codec = Container.from_bytes(blob).codec
        try:
            compressor = get_compressor(codec)
        except KeyError:
            raise ContainerError(
                f"stream names unknown codec {codec!r} (corrupt header?)"
            ) from None
    return compressor.decompress(blob)


def verify_stream(blob: bytes):
    """Checksum + structural verification without decompression.

    Convenience re-export of :func:`repro.integrity.verify_stream`.
    """
    from repro.integrity import verify_stream as _verify

    return _verify(blob)


def repair_stream(blob: bytes):
    """Rebuild damaged chunks of a parity-bearing stream from parity.

    Convenience re-export of :func:`repro.integrity.repair_stream`;
    returns ``(repaired_bytes, RepairReport)``.
    """
    from repro.integrity import repair_stream as _repair

    return _repair(blob)
