"""Figure 4: multiprecision distortion at equal compression ratio.

The paper fixes CR ~= 7 on NYX ``dark_matter_density``, compresses with
SZ_ABS (absolute bound), FPZIP and SZ_T, and inspects a slice both over
the full [0, 1] range and zoomed into [0, 0.1]: the absolute bound wrecks
the small-value (dense) regions; FPZIP keeps them but needs a sloppy 0.5
relative bound to reach the ratio, distorting mid-range values; SZ_T
reaches the same ratio at a ~3x tighter relative bound.

This module regenerates the figure as PGM panels (plus ASCII previews)
and, quantitatively, the per-compressor relative bound achieved at the
common ratio and per-value-range error statistics.
"""

from __future__ import annotations

import math
import os

import numpy as np

from repro.compressors import AbsoluteBound, PrecisionBound, RelativeBound, get_compressor
from repro.compressors.fpzip import max_relative_error
from repro.data import load_field
from repro.experiments.common import Table
from repro.metrics import relative_errors
from repro.viz import save_pgm, to_gray

__all__ = ["run", "tune_bound_for_ratio"]

TARGET_RATIO = 7.0
_SLICE = 0.5  # relative slice position (paper: slice 100 of 512)


def tune_bound_for_ratio(
    compress,
    lo: float,
    hi: float,
    target: float,
    nbytes: int,
    iters: int = 18,
    tol: float = 0.03,
) -> tuple[float, bytes]:
    """Bisect a monotone bound parameter until CR hits ``target``.

    ``compress(bound) -> blob``; assumes ratio grows with the bound.
    """
    blob_best = None
    bound_best = hi
    for _ in range(iters):
        mid = math.sqrt(lo * hi)  # geometric bisection: bounds span decades
        blob = compress(mid)
        ratio = nbytes / len(blob)
        if abs(ratio - target) / target <= tol:
            return mid, blob
        if ratio > target:
            hi = mid
            bound_best, blob_best = mid, blob
        else:
            lo = mid
    if blob_best is None:
        blob_best = compress(hi)
        bound_best = hi
    return bound_best, blob_best


def run(scale: float = 1.0, out_dir: str | None = None, target: float = TARGET_RATIO) -> Table:
    data = load_field("NYX", "dark_matter_density", scale=scale)
    nbytes = data.nbytes

    panels: dict[str, np.ndarray] = {}
    table = Table(
        title=f"Figure 4 -- multiprecision distortion at CR ~= {target:g} (NYX dmd)",
        columns=[
            "compressor", "achieved CR", "eq. rel bound",
            "max rel err", "avg rel err [0,0.1]", "max abs err [0,0.1]",
        ],
    )

    # SZ_ABS: absolute bound tuned to the target ratio.
    sz_abs = get_compressor("SZ_ABS")
    eb, blob = tune_bound_for_ratio(
        lambda b: sz_abs.compress(data, AbsoluteBound(b)),
        1e-6 * float(data.max()), float(data.max()), target, nbytes,
    )
    panels["SZ_ABS"] = sz_abs.decompress(blob)
    _add_row(table, "SZ_ABS", nbytes / len(blob), f"abs {eb:.3g}", data, panels["SZ_ABS"])

    # FPZIP: precision lowered until the ratio is reached.
    fpzip = get_compressor("FPZIP")
    best = None
    for p in range(32, 9, -1):
        blob = fpzip.compress(data, PrecisionBound(p))
        if nbytes / len(blob) >= target:
            best = (p, blob)
            break
    if best is None:
        raise RuntimeError(f"FPZIP cannot reach ratio {target} on this field")
    p, blob = best
    panels["FPZIP"] = fpzip.decompress(blob)
    _add_row(
        table, "FPZIP", nbytes / len(blob),
        f"rel {max_relative_error(p, data.dtype):.3g}", data, panels["FPZIP"],
    )

    # SZ_T: relative bound tuned to the target ratio.
    sz_t = get_compressor("SZ_T")
    br, blob = tune_bound_for_ratio(
        lambda b: sz_t.compress(data, RelativeBound(b)), 1e-6, 0.9, target, nbytes,
    )
    panels["SZ_T"] = sz_t.decompress(blob)
    _add_row(table, "SZ_T", nbytes / len(blob), f"rel {br:.3g}", data, panels["SZ_T"])

    if out_dir is not None:
        os.makedirs(out_dir, exist_ok=True)
        k = int(data.shape[0] * _SLICE)
        save_pgm(os.path.join(out_dir, "fig4_original.pgm"), to_gray(data[k], 0, 1))
        save_pgm(os.path.join(out_dir, "fig4_original_zoom.pgm"), to_gray(data[k], 0, 0.1))
        for name, recon in panels.items():
            save_pgm(os.path.join(out_dir, f"fig4_{name}.pgm"), to_gray(recon[k], 0, 1))
            save_pgm(os.path.join(out_dir, f"fig4_{name}_zoom.pgm"), to_gray(recon[k], 0, 0.1))
    table.notes.append(
        "paper: at CR 7, FPZIP needs rel bound 0.5 vs SZ_T's 0.15; SZ_ABS "
        "distorts the dense [0,0.1] region"
    )
    return table


def _add_row(table: Table, name: str, ratio: float, setting: str, data, recon) -> None:
    rel = relative_errors(data, recon)
    focus = (data > 0) & (data <= 0.1)
    abs_err = np.abs(recon.astype(np.float64) - data.astype(np.float64))
    rel_focus = abs_err[focus] / np.abs(data[focus].astype(np.float64))
    table.add(
        name, ratio, setting,
        float(rel.max()), float(rel_focus.mean()), float(abs_err[focus].max()),
    )
