"""Figure 1: rate-distortion of ZFP_T under different logarithm bases.

For each base in {2, e, 10} the paper sweeps the bound and plots
relative-error-based PSNR (value range fixed at 1) against bit-rate on the
two NYX fields; the three curves coincide (Lemma 4).
"""

from __future__ import annotations

import math

from repro.compressors import RelativeBound
from repro.compressors.zfp import ZFPCompressor
from repro.core import TransformedCompressor
from repro.data import load_field
from repro.experiments.common import Table
from repro.metrics import bit_rate, relative_psnr

__all__ = ["run", "BASES", "BOUNDS", "FIELDS"]

BASES = (2.0, math.e, 10.0)
BOUNDS = (1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1)
FIELDS = ("dark_matter_density", "velocity_x")


def run(scale: float = 1.0, bounds: tuple[float, ...] = BOUNDS) -> Table:
    table = Table(
        title="Figure 1 -- ZFP_T rate distortion per logarithm base (NYX)",
        columns=["field", "base", "pw rel bound", "bit rate", "rel-err PSNR (dB)"],
    )
    for fname in FIELDS:
        data = load_field("NYX", fname, scale=scale)
        for base in BASES:
            comp = TransformedCompressor(ZFPCompressor("accuracy"), base=base)
            for br in bounds:
                blob = comp.compress(data, RelativeBound(br))
                recon = comp.decompress(blob)
                table.add(
                    fname,
                    f"{base:.3g}",
                    br,
                    bit_rate(len(blob), data.size),
                    relative_psnr(data, recon),
                )
    table.notes.append("paper: the three base curves are indistinguishable")
    return table
