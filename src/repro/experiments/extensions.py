"""Extension study: better inner compressors under the same transform.

The transformation scheme's selling point is that it *inherits* progress
on absolute-error compressors.  The paper wrapped SZ 1.4; this experiment
wraps the two successors this library also implements -- the SZ 2.x
regression hybrid and the SZ3 hierarchical-interpolation coder -- and
compares the resulting point-wise-relative compressors on every
application, plus ZFP_T for reference.
"""

from __future__ import annotations

from collections import defaultdict

from repro.compressors import RelativeBound, get_compressor
from repro.data import application_names, field_names, load_field
from repro.experiments.common import Table

__all__ = ["run"]

CANDIDATES = ("SZ_T", "SZ2_T", "SZ3_T", "ZFP_T")
BOUNDS = (1e-3, 1e-2, 1e-1)


def run(scale: float = 1.0, bounds: tuple[float, ...] = BOUNDS) -> Table:
    table = Table(
        title="Extensions -- the transform over successive SZ generations",
        columns=["app", "pw rel bound", *CANDIDATES, "best"],
    )
    for app in application_names():
        data = {f: load_field(app, f, scale=scale) for f in field_names(app)}
        orig = sum(d.nbytes for d in data.values())
        for br in bounds:
            sizes = defaultdict(int)
            for cname in CANDIDATES:
                comp = get_compressor(cname)
                for d in data.values():
                    sizes[cname] += len(comp.compress(d, RelativeBound(br)))
            ratios = [orig / sizes[c] for c in CANDIDATES]
            best = CANDIDATES[max(range(len(ratios)), key=lambda i: ratios[i])]
            table.add(app, br, *ratios, best)
    table.notes.append(
        "the scheme is generic: swapping in a stronger absolute-error "
        "compressor (SZ3) upgrades the point-wise-relative compressor for free"
    )
    return table
