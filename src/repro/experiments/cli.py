"""Command line driver: ``repro-experiments run table4 fig2 --out results``.

Runs any subset of the paper's experiments (or ``all``), prints the tables
and optionally writes ``<name>.txt`` / ``<name>.csv`` (plus PGM panels for
the figure experiments) into an output directory.
"""

from __future__ import annotations

import argparse
import importlib
import os
import sys
import time

from repro.experiments import EXPERIMENT_NAMES
from repro.experiments.common import Table, sweep_records

__all__ = ["main"]


def _run_experiment(name: str, scale: float, out_dir: str | None, cache: dict) -> list[Table]:
    module = importlib.import_module(f"repro.experiments.{name}")
    kwargs = {}
    if name in ("fig2", "fig3"):
        # The two figures share one measurement sweep; run it once.
        if "sweep" not in cache:
            cache["sweep"] = sweep_records(scale=scale)
        result = module.run(scale=scale, records=cache["sweep"])
    elif name in ("fig4", "fig5"):
        result = module.run(scale=scale, out_dir=out_dir, **kwargs)
    else:
        result = module.run(scale=scale)
    return result if isinstance(result, list) else [result]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    runp = sub.add_parser("run", help="run experiments")
    runp.add_argument(
        "names",
        nargs="+",
        choices=[*EXPERIMENT_NAMES, "all"],
        help="experiments to run ('all' for everything)",
    )
    runp.add_argument("--scale", type=float, default=1.0,
                      help="multiply every dataset axis by this factor")
    runp.add_argument("--out", default=None, help="directory for txt/csv/pgm artifacts")
    listp = sub.add_parser("list", help="list available experiments")

    args = parser.parse_args(argv)
    if args.command == "list":
        for name in EXPERIMENT_NAMES:
            print(name)
        return 0

    names = EXPERIMENT_NAMES if "all" in args.names else args.names
    if args.out:
        os.makedirs(args.out, exist_ok=True)
    cache: dict = {}
    for name in names:
        t0 = time.perf_counter()
        tables = _run_experiment(name, args.scale, args.out, cache)
        elapsed = time.perf_counter() - t0
        for i, table in enumerate(tables):
            print(table.format())
            if args.out:
                suffix = f"_{i}" if len(tables) > 1 else ""
                base = os.path.join(args.out, f"{name}{suffix}")
                with open(base + ".txt", "w") as fh:
                    fh.write(table.format() + "\n")
                with open(base + ".csv", "w") as fh:
                    fh.write(table.to_csv())
        print(f"[{name} finished in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
