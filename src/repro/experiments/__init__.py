"""Experiment harness: one module per table/figure of the paper.

Each experiment module exposes ``run(scale=1.0, **options) -> Table`` (or a
list of tables) printing the same rows/series the paper reports.  The CLI
(``repro-experiments`` / ``python -m repro.experiments``) drives them and
writes text + CSV artifacts.

| experiment | paper artifact | module |
|---|---|---|
| ``table2``  | Table II (CR per log base, SZ_T)          | :mod:`repro.experiments.table2` |
| ``fig1``    | Fig. 1 (rate-distortion per base, ZFP_T)  | :mod:`repro.experiments.fig1` |
| ``table3``  | Table III (pre/post-processing per base)  | :mod:`repro.experiments.table3` |
| ``table4``  | Table IV (strict error-bound test)        | :mod:`repro.experiments.table4` |
| ``fig2``    | Fig. 2 (CR vs bound, 4 apps)              | :mod:`repro.experiments.fig2` |
| ``fig3``    | Fig. 3 (compress/decompress rates)        | :mod:`repro.experiments.fig3` |
| ``fig4``    | Fig. 4 (multiprecision slice distortion)  | :mod:`repro.experiments.fig4` |
| ``fig5``    | Fig. 5 (velocity angle skew)              | :mod:`repro.experiments.fig5` |
| ``fig6``    | Fig. 6 (parallel dump/load)               | :mod:`repro.experiments.fig6` |
| ``roundoff``| Lemma 2 ablation                          | :mod:`repro.experiments.roundoff` |
| ``intro``   | lossless <= 2:1 motivation                | :mod:`repro.experiments.intro` |
| ``errordist``| error-shape study (reference [7])        | :mod:`repro.experiments.errordist` |
| ``extensions``| SZ_T vs SZ2_T vs SZ3_T vs ZFP_T          | :mod:`repro.experiments.extensions` |
"""

from repro.experiments.common import Table, sweep_records

__all__ = ["Table", "sweep_records", "EXPERIMENT_NAMES"]

EXPERIMENT_NAMES = [
    "intro",
    "table2",
    "fig1",
    "table3",
    "table4",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "roundoff",
    "errordist",
    "extensions",
]
