"""Table III: pre/post-processing overhead of the logarithm bases.

Times the transformation scheme's preprocessing (forward log map + sign
bitmap compression) and postprocessing (sign decode + inverse map) for
bases 2, e and 10.  The paper finds base 10 badly slower on
postprocessing (no dedicated ``exp10`` in libm), base e slightly faster
than base 2 on preprocessing but slower on postprocessing -- hence base 2.
"""

from __future__ import annotations

import math
import time

from repro.core import LogTransform, abs_bound_for
from repro.data import load_field
from repro.encoding import decode_sign_bitmap, encode_sign_bitmap
from repro.experiments.common import Table

__all__ = ["run", "BASES", "FIELDS"]

BASES = (2.0, math.e, 10.0)
FIELDS = ("dark_matter_density", "velocity_x")
_BR = 1e-3


def run(scale: float = 1.0, repeats: int = 5) -> Table:
    table = Table(
        title="Table III -- transformation overhead per logarithm base (NYX)",
        columns=["field", "base", "pre-processing (s)", "post-processing (s)"],
    )
    import numpy as np

    for fname in FIELDS:
        data = load_field("NYX", fname, scale=scale)
        magnitudes = np.abs(data)
        for base in BASES:
            tf = LogTransform(base)
            ba = abs_bound_for(_BR, base)

            pre = min(_time(lambda: _preprocess(tf, data, magnitudes, ba)) for _ in range(repeats))
            d = tf.forward(magnitudes, ba)
            nonneg, payload = encode_sign_bitmap(data)
            post = min(
                _time(lambda: _postprocess(tf, d, ba, data.dtype, nonneg, payload, data.size))
                for _ in range(repeats)
            )
            table.add(fname, f"{base:.3g}", pre, post)
    table.notes.append("paper: base 10 lacks a fast exp10; base 2 chosen overall")
    return table


def _preprocess(tf: LogTransform, data, magnitudes, ba: float) -> None:
    encode_sign_bitmap(data)
    tf.forward(magnitudes, ba)


def _postprocess(tf: LogTransform, d, ba: float, dtype, nonneg: bool, payload: bytes, n: int) -> None:
    import numpy as np

    magnitudes = tf.inverse(d, ba, dtype)
    if not nonneg:
        negatives = decode_sign_bitmap(False, payload, n)
        np.where(negatives.reshape(magnitudes.shape), -magnitudes, magnitudes)


def _time(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0
