"""Figure 6: parallel dump/load performance of NYX at 1024-4096 cores.

Per-rank compressor behaviour (rate, ratio) is *measured* by running this
library's real SZ_PWR, FPZIP and SZ_T on the NYX fields at ``b_r = 1e-2``;
the shared-file-system side is the GPFS contention model of
:mod:`repro.parallel.io_model`.  Because these are numpy reimplementations,
throughputs are anchored so SZ_T's compression rate matches the paper's
~140 MB/s (Fig. 3c) while preserving the measured *relative* speeds; the
measured ratios are used as-is.  Each rank holds 3 GB (the paper's
setup), so 1024/2048/4096 ranks move 3/6/12 TB.

Expected reproduction: SZ_T dumps ~1.4-1.6x faster and loads ~1.3-1.6x
faster than both baselines at 4096 ranks, with the gap growing with scale
(aggregate-bandwidth regime: compressed bytes dominate).
"""

from __future__ import annotations

from repro.compressors import get_compressor
from repro.compressors.fpzip import precision_for_relbound
from repro.compressors.base import PrecisionBound, RelativeBound
from repro.data import field_names, load_field
from repro.experiments.common import Table
from repro.parallel import CompressorProfile, SimulatedCluster, measure_profile

__all__ = ["run", "measure_nyx_profiles"]

RANK_COUNTS = (1024, 2048, 4096)
BYTES_PER_RANK = 3e9
REL_BOUND = 1e-2
#: Anchor: the paper's SZ_T compression rate on NYX at b_r = 1e-2 (Fig. 3c).
PAPER_SZ_T_COMPRESS_RATE = 1.4e8


def measure_nyx_profiles(scale: float = 1.0) -> list[CompressorProfile]:
    """Measure per-rank rate/ratio of SZ_PWR, FPZIP and SZ_T on NYX."""
    fields = [load_field("NYX", f, scale=scale) for f in field_names("NYX")]
    profiles = []
    for cname in ("SZ_PWR", "FPZIP", "SZ_T"):
        comp = get_compressor(cname)
        if cname == "FPZIP":
            bound = PrecisionBound(precision_for_relbound(REL_BOUND, fields[0].dtype))
        else:
            bound = RelativeBound(REL_BOUND)
        per_field = [measure_profile(comp, f, bound) for f in fields]
        nbytes = sum(f.nbytes for f in fields)
        profiles.append(
            CompressorProfile(
                name=cname,
                compress_rate=nbytes / sum(f.nbytes / p.compress_rate for f, p in zip(fields, per_field)),
                decompress_rate=nbytes / sum(f.nbytes / p.decompress_rate for f, p in zip(fields, per_field)),
                ratio=nbytes / sum(f.nbytes / p.ratio for f, p in zip(fields, per_field)),
            )
        )
    return profiles


def run(scale: float = 1.0, rank_counts: tuple[int, ...] = RANK_COUNTS) -> Table:
    profiles = measure_nyx_profiles(scale=scale)
    by_name = {p.name: p for p in profiles}
    rate_scale = PAPER_SZ_T_COMPRESS_RATE / by_name["SZ_T"].compress_rate
    profiles = [p.scaled(rate_scale) for p in profiles]
    cluster = SimulatedCluster()

    table = Table(
        title="Figure 6 -- NYX parallel dump/load (simulated GPFS, measured rates)",
        columns=[
            "ranks", "compressor", "CR",
            "compress (s)", "write (s)", "dump (s)",
            "read (s)", "decompress (s)", "load (s)",
            "dump speedup", "load speedup",
        ],
    )
    for ranks in rank_counts:
        breakdowns = {
            p.name: cluster.dump_load(p, BYTES_PER_RANK, ranks) for p in profiles
        }
        best_other_dump = min(
            b.dump_s for n, b in breakdowns.items() if n != "SZ_T"
        )
        best_other_load = min(
            b.load_s for n, b in breakdowns.items() if n != "SZ_T"
        )
        for p in profiles:
            b = breakdowns[p.name]
            table.add(
                ranks, p.name, p.ratio,
                b.compress_s, b.write_s, b.dump_s,
                b.read_s, b.decompress_s, b.load_s,
                best_other_dump / b.dump_s if p.name == "SZ_T" else float("nan"),
                best_other_load / b.load_s if p.name == "SZ_T" else float("nan"),
            )
    raw_dump, raw_load = cluster.uncompressed_dump_load(BYTES_PER_RANK, rank_counts[-1])
    table.notes.append(
        f"uncompressed baseline at {rank_counts[-1]} ranks: "
        f"dump {raw_dump / 3600:.2f} h, load {raw_load / 3600:.2f} h "
        "(paper: 0.7-2.8 h and 1-4 h across 1k-4k ranks)"
    )
    table.notes.append(
        "paper: SZ_T achieves 1.38x/1.62x dump and 1.31x/1.55x load speedup "
        "over FPZIP/SZ_PWR at 4096 cores"
    )
    table.notes.append(f"rates anchored: measured Python rates x {rate_scale:.1f}")
    return table
