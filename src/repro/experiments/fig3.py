"""Figure 3: compression and decompression rates (MB/s).

Same grid as Figure 2 but reporting throughput.  Paper shape: FPZIP leads
compression everywhere, ZFP_T is usually second, SZ_T beats SZ_PWR (no
per-block bookkeeping), ISABELA is slowest (sorting); decompression rates
are comparable for everything but ISABELA.

Absolute MB/s of these numpy reimplementations are far below the paper's
C codes; the *relative* ordering is the reproduced quantity (see
EXPERIMENTS.md).
"""

from __future__ import annotations

from collections import defaultdict

from repro.experiments.common import (
    PWR_COMPRESSORS,
    SweepRecord,
    Table,
    sweep_records,
)

__all__ = ["run", "aggregate_rates"]


def aggregate_rates(
    records: list[SweepRecord],
) -> dict[tuple[str, str, float], tuple[float, float]]:
    """(compress MB/s, decompress MB/s) per (app, compressor, bound)."""
    nbytes = defaultdict(int)
    ctime = defaultdict(float)
    dtime = defaultdict(float)
    for r in records:
        key = (r.app, r.compressor, r.rel_bound)
        nbytes[key] += r.original_nbytes
        ctime[key] += r.compress_s
        dtime[key] += r.decompress_s
    return {
        k: (nbytes[k] / ctime[k] / 1e6, nbytes[k] / dtime[k] / 1e6) for k in nbytes
    }


def run(
    scale: float = 1.0,
    records: list[SweepRecord] | None = None,
) -> list[Table]:
    if records is None:
        records = sweep_records(scale=scale)
    rates = aggregate_rates(records)
    apps = sorted({r.app for r in records})
    bounds = sorted({r.rel_bound for r in records})

    tables = []
    for which, idx in (("compression", 0), ("decompression", 1)):
        table = Table(
            title=f"Figure 3 -- {which} rate (MB/s)",
            columns=["app", "pw rel bound", *PWR_COMPRESSORS],
        )
        for app in apps:
            for br in bounds:
                row = [rates.get((app, c, br), (float("nan"),) * 2)[idx] for c in PWR_COMPRESSORS]
                table.add(app, br, *row)
        tables.append(table)
    tables[0].notes.append("paper: FPZIP fastest, ZFP_T second, SZ_T > SZ_PWR, ISABELA slowest")
    tables[1].notes.append("paper: comparable for all compressors except ISABELA")
    return tables
