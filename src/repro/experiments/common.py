"""Shared experiment plumbing: tables, bound mapping, rate sweeps.

The paper's comparison compressors take heterogeneous parameters (relative
bounds, absolute bounds, bit precisions); :func:`compress_for_relbound`
centralizes the mapping from a user-level point-wise relative bound to
each compressor's native parameter, exactly as Section VI does:

* ``SZ_T`` / ``ZFP_T`` / ``SZ_PWR`` / ``ISABELA`` take ``b_r`` directly;
* ``FPZIP`` gets the smallest precision whose truncation error respects
  ``b_r`` (Table IV's ``-p`` column);
* ``ZFP_P`` does not respect bounds at all, so -- like the paper -- its
  precision is *tuned* per field until ~99.9% of points are bounded
  (:func:`tune_zfp_precision`).
"""

from __future__ import annotations

import csv
import io
import time
from dataclasses import dataclass, field

import numpy as np

from repro.compressors import PrecisionBound, RelativeBound, get_compressor
from repro.compressors.fpzip import precision_for_relbound
from repro.data import application_names, field_names, load_field
from repro.metrics import bounded_fraction

__all__ = [
    "Table",
    "compress_for_relbound",
    "tune_zfp_precision",
    "sweep_records",
    "SweepRecord",
    "PAPER_BOUNDS",
    "PWR_COMPRESSORS",
]

#: The bound grid of Figures 2/3.
PAPER_BOUNDS = (1e-4, 1e-3, 1e-2, 1e-1)

#: The point-wise-relative compressors compared in Figures 2/3.
PWR_COMPRESSORS = ("SZ_PWR", "FPZIP", "ISABELA", "ZFP_T", "SZ_T")


@dataclass
class Table:
    """A printable/serializable experiment result table."""

    title: str
    columns: list[str]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *row) -> None:
        if len(row) != len(self.columns):
            raise ValueError(f"row has {len(row)} cells, table has {len(self.columns)} columns")
        self.rows.append(tuple(row))

    def format(self) -> str:
        cells = [[_fmt(c) for c in self.columns]]
        cells += [[_fmt(c) for c in row] for row in self.rows]
        widths = [max(len(r[i]) for r in cells) for i in range(len(self.columns))]
        lines = [f"== {self.title} =="]
        header = "  ".join(c.ljust(w) for c, w in zip(cells[0], widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells[1:]:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.columns)
        writer.writerows(self.rows)
        return buf.getvalue()


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if 0.01 <= abs(value) < 10000:
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return f"{value:.3g}"
    return str(value)


def compress_for_relbound(name: str, data: np.ndarray, rel_bound: float) -> tuple[bytes, str]:
    """Compress honouring a point-wise relative bound; returns (blob, setting)."""
    comp = get_compressor(name)
    if name == "FPZIP":
        p = precision_for_relbound(rel_bound, data.dtype)
        return comp.compress(data, PrecisionBound(p)), f"-p {p}"
    if name == "ZFP_P":
        p = tune_zfp_precision(data, rel_bound)
        return comp.compress(data, PrecisionBound(p)), f"-p {p}"
    return comp.compress(data, RelativeBound(rel_bound)), f"-P {rel_bound:g}"


def tune_zfp_precision(
    data: np.ndarray, rel_bound: float, target: float = 0.999
) -> int:
    """Smallest ZFP precision with >= ``target`` of points relatively bounded.

    Reproduces the paper's per-field tuning of ``ZFP_P`` ("we set the
    percentage threshold for bounded data in ZFP_P to 99.9%").  Bisection
    over the plane count; each probe is a real compress/decompress.
    """
    comp = get_compressor("ZFP_P")
    lo, hi = 4, 32 if data.dtype == np.float32 else 52
    best = hi

    def ok(p: int) -> bool:
        blob = comp.compress(data, PrecisionBound(p))
        stats = bounded_fraction(data, comp.decompress(blob), rel_bound)
        return stats.bounded_fraction >= target

    while lo <= hi:
        mid = (lo + hi) // 2
        if ok(mid):
            best = mid
            hi = mid - 1
        else:
            lo = mid + 1
    return best


@dataclass(frozen=True)
class SweepRecord:
    """One (app, field, compressor, bound) measurement for Figs. 2/3."""

    app: str
    field: str
    compressor: str
    rel_bound: float
    setting: str
    original_nbytes: int
    compressed_nbytes: int
    compress_s: float
    decompress_s: float
    max_rel: float
    bounded: float

    @property
    def ratio(self) -> float:
        return self.original_nbytes / self.compressed_nbytes

    @property
    def compress_mbs(self) -> float:
        return self.original_nbytes / self.compress_s / 1e6

    @property
    def decompress_mbs(self) -> float:
        return self.original_nbytes / self.decompress_s / 1e6


def sweep_records(
    apps: tuple[str, ...] | None = None,
    compressors: tuple[str, ...] = PWR_COMPRESSORS,
    bounds: tuple[float, ...] = PAPER_BOUNDS,
    scale: float = 1.0,
    fields_per_app: int | None = None,
) -> list[SweepRecord]:
    """Run the full (app x field x compressor x bound) grid of Figs. 2/3."""
    if apps is None:
        apps = tuple(application_names())
    records: list[SweepRecord] = []
    for app in apps:
        names = field_names(app)
        if fields_per_app is not None:
            names = names[:fields_per_app]
        for fname in names:
            data = load_field(app, fname, scale=scale)
            for cname in compressors:
                for br in bounds:
                    records.append(_measure(app, fname, cname, br, data))
    return records


def _measure(app: str, fname: str, cname: str, br: float, data: np.ndarray) -> SweepRecord:
    t0 = time.perf_counter()
    blob, setting = compress_for_relbound(cname, data, br)
    t1 = time.perf_counter()
    recon = get_compressor(cname).decompress(blob)
    t2 = time.perf_counter()
    stats = bounded_fraction(data, recon, br)
    return SweepRecord(
        app=app,
        field=fname,
        compressor=cname,
        rel_bound=br,
        setting=setting,
        original_nbytes=data.nbytes,
        compressed_nbytes=len(blob),
        compress_s=t1 - t0,
        decompress_s=t2 - t1,
        max_rel=stats.max_rel,
        bounded=stats.bounded_fraction,
    )
