"""Table IV: the strict error-bound test.

For each of the three widely-used bounds (1e-3, 1e-2, 1e-1) and the two
NYX fields, run all six compressors and report: the native setting used,
the fraction of points strictly bounded (with the paper's ``*`` marker
when original zeros are modified), average and maximum point-wise relative
error, and compression ratio.

Expected reproduction: FPZIP, SZ_T and ZFP_T are bounded for 100% of
points and preserve zeros; SZ_T posts the best ratio; ZFP_P's maximum
error explodes (it cannot respect point-wise bounds); ZFP_T's maximum
error sits well below the bound (over-preservation).
"""

from __future__ import annotations

from repro.compressors import get_compressor
from repro.data import load_field
from repro.experiments.common import Table, compress_for_relbound
from repro.metrics import bounded_fraction

__all__ = ["run", "BOUNDS", "FIELDS", "COMPRESSORS"]

BOUNDS = (1e-3, 1e-2, 1e-1)
FIELDS = ("dark_matter_density", "velocity_x")
COMPRESSORS = ("ISABELA", "FPZIP", "SZ_PWR", "SZ_T", "ZFP_P", "ZFP_T")
_KIND = {
    "ISABELA": "prediction",
    "FPZIP": "prediction",
    "SZ_PWR": "prediction",
    "SZ_T": "prediction",
    "ZFP_P": "transform",
    "ZFP_T": "transform",
}


def run(scale: float = 1.0, bounds: tuple[float, ...] = BOUNDS) -> Table:
    table = Table(
        title="Table IV -- point-wise relative error bound test (NYX)",
        columns=[
            "field", "pwr eb", "type", "name", "settings",
            "bounded", "Avg E", "Max E", "CR",
        ],
    )
    for fname in FIELDS:
        data = load_field("NYX", fname, scale=scale)
        for br in bounds:
            for cname in COMPRESSORS:
                blob, setting = compress_for_relbound(cname, data, br)
                recon = get_compressor(cname).decompress(blob)
                stats = bounded_fraction(data, recon, br)
                table.add(
                    fname,
                    br,
                    _KIND[cname],
                    cname,
                    setting,
                    stats.bounded_label(),
                    stats.avg_rel,
                    stats.max_rel,
                    data.nbytes / len(blob),
                )
    table.notes.append(
        "paper: only FPZIP/SZ_T/ZFP_T reach 100% bounded with zeros kept; "
        "SZ_T has the best CR; ZFP_P max error is unbounded"
    )
    return table
