"""Lemma 2 round-off ablation.

Lemma 2 shrinks the transformed-domain absolute bound by
``max|log x| * eps0`` so that mapping round-off cannot push points past
the relative bound.  This ablation compresses with and without the shrink
and counts the points the encoder's verification pass has to patch: with
Lemma 2 the channel should be empty; without it, violations appear at
tight bounds (the effect the paper's Section III-B analyses).

The CR cost of the shrink is also reported -- it is the "price" of a
guaranteed bound.
"""

from __future__ import annotations

from repro.compressors import RelativeBound
from repro.compressors.sz import SZCompressor
from repro.core import TransformedCompressor
from repro.data import load_field
from repro.experiments.common import Table

__all__ = ["run", "BOUNDS", "FIELDS"]

BOUNDS = (1e-4, 1e-3, 1e-2)
FIELDS = ("dark_matter_density", "velocity_x")


def run(scale: float = 1.0, bounds: tuple[float, ...] = BOUNDS) -> Table:
    table = Table(
        title="Lemma 2 ablation -- bound violations caught by verification (NYX)",
        columns=[
            "field", "pw rel bound",
            "violations (lemma2 on)", "CR (on)",
            "violations (lemma2 off)", "CR (off)",
        ],
    )
    for fname in FIELDS:
        data = load_field("NYX", fname, scale=scale)
        for br in bounds:
            row = [fname, br]
            for lemma2 in (True, False):
                comp = TransformedCompressor(SZCompressor(), apply_lemma2=lemma2)
                blob = comp.compress(data, RelativeBound(br))
                row += [comp.last_patch_count, data.nbytes / len(blob)]
            table.add(*row)
    table.notes.append(
        "with Lemma 2's shrink the patch channel stays empty; without it, "
        "round-off violations appear and must be repaired at extra cost"
    )
    return table
