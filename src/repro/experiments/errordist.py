"""Error-distribution study (supplementary; the paper's reference [7]).

Compresses NYX fields with SZ_ABS and ZFP_A at the same absolute bound
and characterizes the signed error distributions: SZ's linear-scaling
quantization is near-uniform over the bound and uses the whole budget;
ZFP's transform-domain truncation is bell-shaped and over-preserving.
The same contrast carries into the log domain for SZ_T vs ZFP_T, which is
why ZFP_T's maximum relative error sits so far below the bound in
Table IV.
"""

from __future__ import annotations

from repro.compressors import AbsoluteBound, RelativeBound, get_compressor
from repro.data import load_field
from repro.experiments.common import Table
from repro.metrics.distribution import error_autocorrelation, error_distribution

__all__ = ["run"]

FIELDS = ("dark_matter_density", "temperature")


def run(scale: float = 1.0) -> Table:
    table = Table(
        title="Error distributions -- SZ (uniform) vs ZFP (bell-shaped)",
        columns=[
            "field", "compressor", "bound kind", "std/bound", "kurtosis",
            "KS uniform", "KS normal", "verdict", "fill", "lag-1 autocorr",
        ],
    )
    for fname in FIELDS:
        data = load_field("NYX", fname, scale=scale)
        eb = 1e-3 * float(abs(data).max())
        cases = [
            ("SZ_ABS", AbsoluteBound(eb), eb, "abs"),
            ("ZFP_A", AbsoluteBound(eb), eb, "abs"),
            ("SZ_T", RelativeBound(1e-2), 1e-2, "rel"),
            ("ZFP_T", RelativeBound(1e-2), 1e-2, "rel"),
        ]
        for cname, bound, ebv, kind in cases:
            comp = get_compressor(cname)
            recon = comp.decompress(comp.compress(data, bound))
            if kind == "abs":
                dist = error_distribution(data, recon, ebv)
            else:
                # relative errors scaled per point: err/|x| vs the bound
                import numpy as np

                x = data.astype(np.float64)
                nz = x != 0
                rel = (recon.astype(np.float64)[nz] - x[nz]) / np.abs(x[nz])
                dist = error_distribution(np.zeros_like(rel), rel, ebv)
            verdict = "uniform" if dist.looks_uniform else "normal-ish"
            ac1 = float(error_autocorrelation(data, recon, 1)[0])
            table.add(
                fname, cname, kind, dist.std, dist.excess_kurtosis,
                dist.uniform_ks, dist.normal_ks, verdict, dist.fill, ac1,
            )
    table.notes.append(
        "reference [7]: SZ errors ~ uniform on [-eb, eb] (std/bound ~ 0.58, "
        "kurtosis ~ -1.2, full fill) and spatially white; ZFP errors "
        "bell-shaped, over-preserved and correlated within blocks"
    )
    return table
