"""Figure 5: velocity angle skew at equal compression ratio.

At CR ~= 8 on the three HACC velocity components, the paper compares the
angle between original and reconstructed 3-D velocities: the absolute
bound skews small (slow) particles badly (> 6 degrees per cell on
average), FPZIP sits around 4 and SZ_T around 2, because at the common
ratio SZ_T affords the strictest relative bound (0.145 vs FPZIP's 0.334).
"""

from __future__ import annotations

import math
import os

import numpy as np

from repro.compressors import AbsoluteBound, PrecisionBound, RelativeBound, get_compressor
from repro.compressors.fpzip import max_relative_error
from repro.data import load_field
from repro.experiments.common import Table
from repro.experiments.fig4 import tune_bound_for_ratio
from repro.metrics import blockwise_mean_skew, skew_angles
from repro.viz import save_pgm, to_gray

__all__ = ["run"]

TARGET_RATIO = 8.0
_CELLS = 4096  # index cells for the per-cell mean (rendered 64x64)


def run(scale: float = 1.0, out_dir: str | None = None, target: float = TARGET_RATIO) -> Table:
    comps = [load_field("HACC", f"velocity_{ax}") for ax in "xyz"]
    if scale != 1.0:
        comps = [load_field("HACC", f"velocity_{ax}", scale=scale) for ax in "xyz"]
    nbytes = sum(c.nbytes for c in comps)
    vmax = max(float(np.abs(c).max()) for c in comps)

    table = Table(
        title=f"Figure 5 -- HACC velocity angle skew at CR ~= {target:g}",
        columns=["compressor", "achieved CR", "eq. bound", "mean skew (deg)", "p99 skew (deg)"],
    )
    grids: dict[str, np.ndarray] = {}

    # SZ_ABS at a single absolute bound across components.
    sz_abs = get_compressor("SZ_ABS")
    eb, _ = tune_bound_for_ratio(
        lambda b: _cat(sz_abs.compress(c, AbsoluteBound(b)) for c in comps),
        1e-6 * vmax, vmax, target, nbytes,
    )
    blobs = [sz_abs.compress(c, AbsoluteBound(eb)) for c in comps]
    _add(table, grids, "SZ_ABS", f"abs {eb:.3g}", comps, [sz_abs.decompress(b) for b in blobs], nbytes, blobs)

    # FPZIP at the precision that reaches the ratio.
    fpzip = get_compressor("FPZIP")
    for p in range(32, 9, -1):
        blobs = [fpzip.compress(c, PrecisionBound(p)) for c in comps]
        if nbytes / sum(len(b) for b in blobs) >= target:
            break
    _add(
        table, grids, "FPZIP", f"rel {max_relative_error(p, comps[0].dtype):.3g}",
        comps, [fpzip.decompress(b) for b in blobs], nbytes, blobs,
    )

    # SZ_T at the relative bound that reaches the ratio.
    sz_t = get_compressor("SZ_T")
    br, _ = tune_bound_for_ratio(
        lambda b: _cat(sz_t.compress(c, RelativeBound(b)) for c in comps),
        1e-6, 0.9, target, nbytes,
    )
    blobs = [sz_t.compress(c, RelativeBound(br)) for c in comps]
    _add(table, grids, "SZ_T", f"rel {br:.3g}", comps, [sz_t.decompress(b) for b in blobs], nbytes, blobs)

    if out_dir is not None:
        os.makedirs(out_dir, exist_ok=True)
        side = int(math.isqrt(_CELLS))
        hi = max(float(g.max()) for g in grids.values())
        for name, grid in grids.items():
            img = to_gray(grid[: side * side].reshape(side, side), 0.0, hi)
            save_pgm(os.path.join(out_dir, f"fig5_{name}.pgm"), img)
    table.notes.append(
        "paper: SZ_ABS cells skew > 6 deg, FPZIP ~4, SZ_T ~2 (tightest eq. bound)"
    )
    return table


def _cat(blobs) -> bytes:
    return b"".join(blobs)


def _add(table, grids, name, setting, comps, recons, nbytes, blobs) -> None:
    angles = skew_angles(tuple(comps), tuple(recons))
    cells = blockwise_mean_skew(angles, _CELLS)
    grids[name] = cells
    ratio = nbytes / sum(len(b) for b in blobs)
    table.add(name, ratio, setting, float(cells.mean()), float(np.percentile(cells, 99)))
