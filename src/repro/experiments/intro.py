"""Introduction claim: lossless compression tops out near 2:1.

The paper motivates error-bounded lossy compression with the observation
that lossless compressors achieve "usually no more than 2:1" on
scientific floating-point data (random mantissas).  This experiment runs
the DEFLATE baseline (with and without byte shuffle), lossless FPZIP
(full precision), and -- for contrast -- SZ_T at a mild 1e-2 relative
bound over every application's fields.
"""

from __future__ import annotations

import numpy as np

from repro.compressors import PrecisionBound, RelativeBound, get_compressor
from repro.compressors.lossless import LosslessDeflate
from repro.data import application_names, field_names, load_field
from repro.experiments.common import Table

__all__ = ["run"]


def run(scale: float = 1.0) -> Table:
    table = Table(
        title="Introduction -- lossless vs error-bounded compression ratios",
        columns=["app", "GZIP", "GZIP+shuffle", "FPZIP lossless", "SZ_T @ 1e-2"],
    )
    plain = LosslessDeflate(shuffle=False)
    shuffled = LosslessDeflate(shuffle=True)
    fpzip = get_compressor("FPZIP")
    sz_t = get_compressor("SZ_T")

    for app in application_names():
        orig = 0
        sizes = [0, 0, 0, 0]
        for fname in field_names(app):
            data = load_field(app, fname, scale=scale)
            orig += data.nbytes
            lossless_p = 32 if data.dtype == np.float32 else 58
            sizes[0] += len(plain.compress(data))
            sizes[1] += len(shuffled.compress(data))
            sizes[2] += len(fpzip.compress(data, PrecisionBound(lossless_p)))
            sizes[3] += len(sz_t.compress(data, RelativeBound(1e-2)))
        table.add(app, *(orig / s for s in sizes))
    table.notes.append(
        "paper intro: lossless compressors reach 'usually no more than 2:1' "
        "on scientific floating-point data"
    )
    return table
