"""Figure 2: compression ratio vs point-wise relative bound, four apps.

Per application the paper plots the overall compression ratio (all fields
aggregated) of SZ_PWR, FPZIP, ISABELA, ZFP_T and SZ_T over bounds
1e-4..1e-1.  Expected shape: SZ_T on top nearly everywhere; SZ_PWR
competitive at tight bounds but flattening at loose ones (and weak on
HACC); FPZIP strong except on 2-D CESM at tight bounds; ISABELA flat and
low; ZFP_T low (over-preservation).
"""

from __future__ import annotations

from collections import defaultdict

from repro.experiments.common import (
    PAPER_BOUNDS,
    PWR_COMPRESSORS,
    SweepRecord,
    Table,
    sweep_records,
)

__all__ = ["run", "aggregate_ratio"]


def aggregate_ratio(records: list[SweepRecord]) -> dict[tuple[str, str, float], float]:
    """Overall CR per (app, compressor, bound): total bytes in / bytes out."""
    orig = defaultdict(int)
    comp = defaultdict(int)
    for r in records:
        key = (r.app, r.compressor, r.rel_bound)
        orig[key] += r.original_nbytes
        comp[key] += r.compressed_nbytes
    return {k: orig[k] / comp[k] for k in orig}


def run(
    scale: float = 1.0,
    records: list[SweepRecord] | None = None,
) -> Table:
    if records is None:
        records = sweep_records(scale=scale)
    ratios = aggregate_ratio(records)
    apps = sorted({r.app for r in records})
    bounds = sorted({r.rel_bound for r in records})
    table = Table(
        title="Figure 2 -- compression ratio vs point-wise relative bound",
        columns=["app", "pw rel bound", *PWR_COMPRESSORS, "winner"],
    )
    for app in apps:
        for br in bounds:
            row = [ratios.get((app, c, br), float("nan")) for c in PWR_COMPRESSORS]
            winner = PWR_COMPRESSORS[max(range(len(row)), key=lambda i: row[i])]
            table.add(app, br, *row, winner)
    table.notes.append("paper: SZ_T outperforms all compressors on (almost) every point")
    return table


if __name__ == "__main__":  # pragma: no cover - convenience entry
    print(run().format())
