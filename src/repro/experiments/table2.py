"""Table II: impact of the logarithm base on SZ_T compression ratios.

The paper compresses NYX ``dark_matter_density`` and ``velocity_x`` with
SZ_T under bases {2, e, 10} and six relative bounds, finding per-base CR
differences of only ~1-3% (Lemma 3 / Theorem 3 in action).
"""

from __future__ import annotations

import math

from repro.compressors import RelativeBound
from repro.core import TransformedCompressor
from repro.compressors.sz import SZCompressor
from repro.data import load_field
from repro.experiments.common import Table

__all__ = ["run", "BASES", "BOUNDS", "FIELDS"]

BASES = (2.0, math.e, 10.0)
BOUNDS = (1e-4, 1e-3, 1e-2, 1e-1, 0.2, 0.3)
FIELDS = ("dark_matter_density", "velocity_x")


def run(scale: float = 1.0, bounds: tuple[float, ...] = BOUNDS) -> Table:
    table = Table(
        title="Table II -- SZ_T compression ratio per logarithm base (NYX)",
        columns=["field", "pw rel bound", "base 2", "base e", "base 10", "max spread %"],
    )
    for fname in FIELDS:
        data = load_field("NYX", fname, scale=scale)
        for br in bounds:
            ratios = []
            for base in BASES:
                comp = TransformedCompressor(SZCompressor(), base=base)
                blob = comp.compress(data, RelativeBound(br))
                ratios.append(data.nbytes / len(blob))
            spread = 100.0 * (max(ratios) - min(ratios)) / min(ratios)
            table.add(fname, br, *ratios, spread)
    table.notes.append(
        "paper: base choice moves CR by ~1% (density) / ~3% (velocity) on average"
    )
    return table
