"""One-call compression quality and stream-statistics reports.

``quality_report(original, blob)`` decompresses a stream, pulls the codec
and its native bound out of the container, and assembles every metric the
evaluation uses -- ratio, bit-rate, PSNR flavours, point-wise error
statistics, error-distribution shape.  The CLI's ``--report`` flag and the
examples use it; it is also the quickest way for a downstream user to
judge "what did this setting actually do to my data".

``build_report(blob)`` needs no original: it decodes the stream once and
returns a :class:`StreamStats` describing it -- codec, shape, per-section
sizes, chunk count -- together with the decode-side telemetry snapshot
(CRC verification time, container decode time, chunk counters) isolated
via :meth:`repro.observe.MetricsRegistry.diff`.  ``repro-compress stats``
and the experiment scripts share this code path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.encoding.container import Container, ContainerError
from repro.metrics import bit_rate, compression_ratio, psnr, relative_psnr
from repro.metrics.distribution import ErrorDistribution, error_distribution
from repro.metrics.error import ErrorStats, bounded_fraction
from repro.observe.metrics import metrics as _metrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.chunked import RecoveryReport
    from repro.observe.audit import AuditReport

__all__ = [
    "QualityReport",
    "StreamStats",
    "audit_report",
    "build_report",
    "quality_report",
    "stream_bound",
]

#: Container keys holding each codec's native bound, with its kind.
#: Kinds: "abs"/"rel" are error bounds the stream guarantees point-wise;
#: "prec" (bit precision) and "rate" (bits/value) parameterize fidelity
#: without a point-wise guarantee, so reports show them but never grade
#: errors against them.  GZIP (lossless) and CHUNKED (delegates to its
#: per-chunk inner streams) intentionally have no entry.
_BOUND_KEYS = {
    "SZ_ABS": ("eb", "abs"),
    "SZ2_ABS": ("eb", "abs"),
    "SZ3_ABS": ("eb", "abs"),
    "ZFP_A": ("param", "abs"),
    "ZFP_P": ("param", "prec"),
    "ZFP_R": ("param", "rate"),
    "FPZIP": ("precision", "prec"),
    "SZ_PWR": ("br", "rel"),
    "ISABELA": ("br", "rel"),
    "SZ_T": ("br", "rel"),
    "SZ2_T": ("br", "rel"),
    "SZ3_T": ("br", "rel"),
    "ZFP_T": ("br", "rel"),
    "NAIVE_T": ("br", "rel"),
}

#: Codecs whose bound parameter is stored as an integer section (u64)
#: rather than a float; reading those via ``get_f64`` would silently
#: reinterpret the bits.
_U64_BOUND_CODECS = frozenset({"FPZIP"})


def stream_bound(box: Container) -> tuple[str | None, float | None]:
    """``(kind, value)`` of the native bound a container carries.

    ``(None, None)`` when the codec has no recoverable bound (lossless,
    CHUNKED wrappers) or the expected section is absent.  SAFE streams
    derive their bound from the declared safeguards: a relative-error
    safeguard outranks an absolute one; other kinds carry no error bound.
    """
    if box.codec == "SAFE":
        if "safeguards" not in box:
            return None, None
        from repro.safeguards.kinds import parse_safeguard

        guards = []
        for spec in box.get_str("safeguards").split(";"):
            if not spec.strip():
                continue
            try:
                guards.append(parse_safeguard(spec))
            except ValueError:
                continue
        for kind in ("rel", "abs"):
            for sg in guards:
                if sg.kind == kind:
                    return kind, float(sg.value)
        return None, None
    key = _BOUND_KEYS.get(box.codec)
    if key is None or key[0] not in box:
        return None, None
    if box.codec in _U64_BOUND_CODECS:
        return key[1], float(box.get_u64(key[0]))
    return key[1], box.get_f64(key[0])


@dataclass(frozen=True)
class QualityReport:
    codec: str
    original_nbytes: int
    compressed_nbytes: int
    ratio: float
    bits_per_value: float
    psnr_db: float
    relative_psnr_db: float
    bound_kind: str | None  # "abs" / "rel" / None when not recoverable
    bound_value: float | None
    errors: ErrorStats | None  # vs the native bound, when known
    distribution: ErrorDistribution | None

    def format(self) -> str:
        lines = [
            f"codec:            {self.codec}",
            f"size:             {self.original_nbytes} -> {self.compressed_nbytes} B"
            f"  ({self.ratio:.2f}x, {self.bits_per_value:.2f} bits/value)",
            f"PSNR:             {self.psnr_db:.2f} dB   "
            f"relative-error PSNR: {self.relative_psnr_db:.2f} dB",
        ]
        if self.bound_kind is not None and self.errors is not None:
            lines.append(
                f"bound:            {self.bound_kind} {self.bound_value:g}   "
                f"bounded: {self.errors.bounded_label()}"
            )
            lines.append(
                f"point-wise error: max abs {self.errors.max_abs:.3e}   "
                f"max rel {self.errors.max_rel:.3e}   avg rel {self.errors.avg_rel:.3e}"
            )
        elif self.bound_kind is not None:
            lines.append(
                f"bound:            {self.bound_kind} {self.bound_value:g} "
                "(fidelity knob, no point-wise guarantee)"
            )
        if self.distribution is not None:
            shape = "uniform" if self.distribution.looks_uniform else "bell-shaped"
            lines.append(
                f"error shape:      {shape} (std/bound {self.distribution.std:.3f}, "
                f"budget fill {self.distribution.fill:.2f})"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class StreamStats:
    """What one decode of a stream looked like, no original data needed.

    ``metrics`` is the decode-side registry diff: only what *this* decode
    moved -- ``crc.verify_s``, ``container.decode_s``, chunk counters,
    transform counters -- not process-lifetime totals.
    """

    codec: str
    version: int
    nbytes: int
    shape: tuple[int, ...]
    dtype: str
    decoded_nbytes: int
    ratio: float
    sections: dict[str, int]
    n_chunks: int | None
    inner_codec: str | None
    #: ``(k, group_size)`` of a parity-bearing (v3) stream, else None.
    parity: tuple[int, int] | None
    decode_s: float
    crc_verify_s: float
    metrics: dict[str, dict]
    #: Damage-recovery outcome when ``build_report(tolerate_corruption=True)``
    #: had to fall back to partial decoding; None on a clean decode.
    recovery: "RecoveryReport | None" = None
    #: Declared safeguard specs and patch count of a SAFE (v4) stream.
    safeguards: tuple[str, ...] | None = None
    patched: int | None = None
    #: Bytes per attribution kind (entropy table vs payload, outliers,
    #: patches, parity, framing, CRCs ...) from the byte-attribution tree
    #: (``repro.observe.quality.attribute_bytes``); None when attribution
    #: was unavailable.  Leaf kinds sum exactly to ``nbytes``.
    kind_totals: dict[str, int] | None = None
    #: Dominant payload kind per top-level section, same source.
    section_kinds: dict[str, str] | None = None
    #: Degradation-ladder chain recorded by the writer (``"SZ_T>GZIP"``),
    #: None when the stream was not written through a ladder.
    ladder: str | None = None
    #: Per-codec chunk counts from the ``chunk_codecs`` section (which
    #: rung actually compressed each chunk); None when not recorded.
    codec_mix: dict[str, int] | None = None
    #: Chunks a fallback rung (not the primary codec) had to compress.
    degraded_chunks: int | None = None

    def format(self) -> str:
        lines = [
            f"codec:         {self.codec} (v{self.version} container)",
            f"shape:         {self.shape} {self.dtype}",
            f"size:          {self.nbytes} -> {self.decoded_nbytes} B"
            f"  ({self.ratio:.2f}x)",
        ]
        if self.n_chunks is not None:
            inner = f" of {self.inner_codec}" if self.inner_codec else ""
            lines.append(f"chunks:        {self.n_chunks}{inner}")
        if self.ladder is not None:
            lines.append(f"ladder:        {self.ladder}")
        if self.codec_mix is not None:
            mix = ", ".join(f"{n}x {c}" for c, n in sorted(self.codec_mix.items()))
            fell = (
                f" ({self.degraded_chunks} chunk(s) fell back)"
                if self.degraded_chunks
                else ""
            )
            lines.append(f"codec mix:     {mix}{fell}")
        if self.parity is not None:
            lines.append(
                f"parity:        k={self.parity[0]} per group of {self.parity[1]}"
            )
        if self.safeguards is not None:
            patched = (
                f", {self.patched} point(s) patched"
                if self.patched is not None
                else ""
            )
            inner = f" over {self.inner_codec}" if self.inner_codec else ""
            lines.append(
                f"safeguards:    {'; '.join(self.safeguards)}{inner}{patched}"
            )
        if self.recovery is not None:
            lines.append(f"recovery:      {self.recovery.summary()}")
        lines.append(
            f"decode:        {self.decode_s * 1e3:.3f} ms total, "
            f"CRC verification {self.crc_verify_s * 1e3:.3f} ms"
        )
        lines.append("sections:")
        for key, size in self.sections.items():
            kind = (self.section_kinds or {}).get(key)
            suffix = f"  [{kind}]" if kind else ""
            lines.append(f"  {key:14s} {size:12d} B{suffix}")
        if self.kind_totals:
            lines.append("byte attribution:")
            for kind, size in self.kind_totals.items():
                share = 100.0 * size / self.nbytes if self.nbytes else 0.0
                lines.append(f"  {kind:14s} {size:12d} B  {share:6.2f}%")
            overhead = self.kind_totals.get("framing", 0) + self.kind_totals.get(
                "checksum", 0
            )
            share = 100.0 * overhead / self.nbytes if self.nbytes else 0.0
            lines.append(f"  container overhead (framing+CRC): {overhead} B ({share:.2f}%)")
        moved = {k: v for k, v in self.metrics.items() if k not in self.sections}
        if moved:
            lines.append("decode metrics:")
            for name in sorted(moved):
                snap = moved[name]
                if snap["type"] == "histogram":
                    lines.append(
                        f"  {name:28s} n={snap['n']} mean={snap['mean']:.6g}"
                    )
                else:
                    lines.append(f"  {name:28s} {snap['value']:.6g}")
        return "\n".join(lines)


def build_report(blob: bytes, tolerate_corruption: bool = False) -> StreamStats:
    """Decode ``blob`` once and describe the stream + the decode's cost.

    With ``tolerate_corruption`` a damaged stream is decoded best-effort
    via :func:`repro.core.chunked.recover_array` -- intact chunks of a
    CHUNKED v2 stream are kept, lost spans are filled -- and the
    :class:`~repro.core.chunked.RecoveryReport` lands in
    :attr:`StreamStats.recovery` (None when the stream decoded fully).
    A stream whose geometry is itself unreadable still raises.

    The metrics snapshot is diffed around the decode, so concurrent work
    in other threads can leak into it; for exact isolation call this from
    a quiet process (the ``repro-compress stats`` command is one).
    """
    from repro import decompress
    from repro.core.chunked import recover_array

    reg = _metrics()
    before = reg.snapshot()
    t0 = time.perf_counter()
    recovery = None
    if tolerate_corruption:
        recon, recovery = recover_array(blob)
        if recon is None:
            raise ContainerError(
                "stream unrecoverable: "
                + (recovery.summary() if recovery else "no readable geometry")
            )
    else:
        recon = decompress(blob)
    decode_s = time.perf_counter() - t0
    delta = reg.diff(before)

    box = Container.from_bytes(
        blob, verify_checksums=False, partial=tolerate_corruption
    )
    n_chunks = inner_codec = parity = None
    safeguards = patched = None
    ladder = codec_mix = degraded = None
    if box.codec == "CHUNKED" and "n_chunks" in box:
        n_chunks = box.get_u64("n_chunks")
        if "inner_codec" in box:
            inner_codec = box.get_str("inner_codec")
        if "parity_k" in box and "group_size" in box:
            parity = (box.get_u64("parity_k"), box.get_u64("group_size"))
        if "ladder" in box:
            ladder = box.get_str("ladder")
        if "chunk_codecs" in box:
            codecs = [c for c in box.get_str("chunk_codecs").split(";") if c]
            codec_mix = {}
            for c in codecs:
                codec_mix[c] = codec_mix.get(c, 0) + 1
            primary = (ladder.split(">") if ladder else codecs)[0] if codecs else None
            degraded = sum(n for c, n in codec_mix.items() if c != primary)
    if box.codec == "SAFE":
        if "safeguards" in box:
            safeguards = tuple(
                s for s in box.get_str("safeguards").split(";") if s.strip()
            )
        if "inner_codec" in box:
            inner_codec = box.get_str("inner_codec")
        if "n_patch" in box:
            patched = int(box.get_u64("n_patch"))
    crc = delta.get("crc.verify_s")
    kind_totals = section_kinds = None
    try:
        from repro.observe.quality import attribute_bytes, section_kind_map

        tree = attribute_bytes(blob)
        kind_totals = tree.kind_totals()
        section_kinds = section_kind_map(tree)
    except Exception:  # noqa: BLE001 - attribution is descriptive, never fatal
        pass
    return StreamStats(
        codec=box.codec,
        version=box.version,
        nbytes=len(blob),
        shape=recon.shape,
        dtype=recon.dtype.name,
        decoded_nbytes=recon.nbytes,
        ratio=compression_ratio(recon.nbytes, len(blob)),
        sections={key: len(box.get(key)) for key in box.keys()},
        n_chunks=n_chunks,
        inner_codec=inner_codec,
        parity=parity,
        decode_s=decode_s,
        crc_verify_s=float(crc["value"]) if crc else 0.0,
        metrics=delta,
        recovery=recovery,
        safeguards=safeguards,
        patched=patched,
        kind_totals=kind_totals,
        section_kinds=section_kinds,
        ladder=ladder,
        codec_mix=codec_mix,
        degraded_chunks=degraded,
    )


def audit_report(
    blob: bytes,
    original: np.ndarray | None = None,
    check_theorem3: bool = True,
) -> "AuditReport":
    """Bound-conformance audit of a stream (see :mod:`repro.observe.audit`).

    Convenience re-export so callers holding a stream and (optionally) its
    original can get the full Theorem 1 / Lemma 2 / Theorem 3 audit from
    the same module that builds the other reports.
    """
    from repro.observe.audit import audit_stream

    return audit_stream(blob, original, check_theorem3=check_theorem3)


def quality_report(original: np.ndarray, blob: bytes) -> QualityReport:
    """Full quality assessment of ``blob`` against ``original``."""
    from repro import decompress

    box = Container.from_bytes(blob)
    recon = decompress(blob)
    original = np.asarray(original)
    if recon.shape != original.shape:
        raise ValueError(
            f"stream reconstructs shape {recon.shape}, original is {original.shape}"
        )

    errors = dist = None
    bound_kind, bound_value = stream_bound(box)
    if bound_kind == "abs":
        # abs-bound codecs: stats against the absolute bound directly
        errors = _abs_stats(original, recon, bound_value)
        dist = error_distribution(original, recon, bound_value)
    elif bound_kind == "rel":
        errors = bounded_fraction(original, recon, bound_value)
        x = original.astype(np.float64).ravel()
        nz = x != 0
        rel = (recon.astype(np.float64).ravel()[nz] - x[nz]) / np.abs(x[nz])
        if rel.size >= 8:
            dist = error_distribution(np.zeros_like(rel), rel, bound_value)
    # "prec"/"rate" kinds parameterize fidelity without a point-wise
    # guarantee: report the knob, grade nothing against it.

    return QualityReport(
        codec=box.codec,
        original_nbytes=original.nbytes,
        compressed_nbytes=len(blob),
        ratio=compression_ratio(original.nbytes, len(blob)),
        bits_per_value=bit_rate(len(blob), original.size),
        psnr_db=psnr(original, recon),
        relative_psnr_db=relative_psnr(original, recon),
        bound_kind=bound_kind,
        bound_value=bound_value,
        errors=errors,
        distribution=dist,
    )


def _abs_stats(original: np.ndarray, recon: np.ndarray, eb: float) -> ErrorStats:
    """ErrorStats where 'bounded' means the absolute bound."""
    x = original.astype(np.float64).ravel()
    xd = recon.astype(np.float64).ravel()
    err = np.abs(xd - x)
    zeros = x == 0
    rel = err[~zeros] / np.abs(x[~zeros])
    return ErrorStats(
        max_abs=float(err.max(initial=0.0)),
        max_rel=float(rel.max(initial=0.0)),
        avg_rel=float(rel.mean()) if rel.size else 0.0,
        bounded_fraction=float((err <= eb).mean()),
        zeros_modified=int((err[zeros] > 0).sum()),
        n=x.size,
    )
