"""File-level command line tool: ``repro-compress``.

Mirrors the ergonomics of the SZ/ZFP command-line utilities::

    repro-compress compress field.f32 field.rpz --shape 512,512,512 \
        --rel-bound 1e-3 --compressor SZ_T
    repro-compress compress field.f32 field.rpz --shape 512,512,512 \
        --precision 16 --compressor ZFP_P \
        --safeguard rel:1e-3 --safeguard sign --safeguard monotone:axis=0
    repro-compress decompress field.rpz field.out.f32
    repro-compress info field.rpz
    repro-compress stats field.rpz --top 10
    repro-compress profile --profile-out prof.speedscope.json \
        compress field.f32 field.rpz --shape 512,512,512 --rel-bound 1e-3
    repro-compress perf report --out perf_report.md
    repro-compress verify field.rpz
    repro-compress repair damaged.rpz repaired.rpz --json report.json
    repro-compress faults bit-flip field.rpz damaged.rpz --seed 3

``compress``, ``decompress`` and ``stats`` accept ``--trace`` (print the
pipeline span tree, stage times as percentages of the root) and
``--trace-json PATH`` (write the same spans as JSON for machines); see
``docs/observability.md``.

Raw binaries need ``--shape`` (and ``--dtype`` when not float32); ``.npy``
inputs are self-describing.  ``compress`` verifies and reports the achieved
ratio and maximum point-wise relative error.

``compress``/``decompress`` accept ``--journal DIR`` (crash-safe
write-ahead journaling; an interrupted job is finished by
``repro-compress resume DIR``), ``--policy SPEC`` (declarative resilience
policy, e.g. ``retries=3;chunk-timeout=2;ladder=SZ_T>GZIP``) and
``--ladder A>B`` (graceful-degradation codec chain); see
``docs/resilience.md``.

Expected failures never produce a traceback: every command prints a
one-line ``error:`` diagnostic to stderr and exits with a meaningful
status.  Exit 2 means bad data or environment (corrupt stream, missing
file, I/O error -- and argparse's own usage errors); exit 1 means the
request itself cannot be satisfied (invalid spec or bound, exhausted
codec ladder, unresumable journal).  Anything else exiting nonzero is a
crash and keeps its traceback.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import (
    AbsoluteBound,
    Container,
    PrecisionBound,
    RelativeBound,
    StreamError,
    available_compressors,
    compress,
    decompress,
)
from repro.compressors.base import UnsupportedBound
from repro.data.io import load_array, save_array
from repro.metrics import bounded_fraction
from repro.resilience.policy import ResilienceError

__all__ = ["main"]


def _parse_shape(text: str) -> tuple[int, ...]:
    try:
        dims = tuple(int(d) for d in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad shape {text!r}; expected e.g. 512,512,512")
    if not dims or any(d <= 0 for d in dims):
        raise argparse.ArgumentTypeError(f"shape dimensions must be positive: {text!r}")
    return dims


def _parse_size(text: str) -> int:
    """Byte count with optional K/M/G suffix (binary units): '8M' -> 8 MiB."""
    scale = {"K": 2**10, "M": 2**20, "G": 2**30}.get(text[-1:].upper(), 1)
    digits = text[:-1] if scale != 1 else text
    try:
        value = int(digits) * scale
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad size {text!r}; expected e.g. 4M, 512K, 1048576")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"size must be positive: {text!r}")
    return value


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive: {text!r}")
    return value


def _parse_fill(text: str) -> str | float:
    """Fill policy: a named mode or a literal float."""
    if text in ("nan", "zero", "nearest"):
        return text
    try:
        return float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad fill {text!r}; expected nan, zero, nearest, or a number"
        )


def _parse_keep(text: str) -> int | float:
    """Truncation point: plain int = byte count, value with '.' = fraction."""
    try:
        return float(text) if "." in text else int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad keep {text!r}; expected a byte count (1024) or fraction (0.5)"
        )


def _parse_safeguard_spec(text: str) -> str:
    """Validate a ``--safeguard`` spec early; the string itself is kept."""
    from repro.safeguards import parse_safeguard

    try:
        parse_safeguard(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return text


def _parse_policy_spec(text: str) -> str:
    """Validate a ``--policy`` spec early; the string itself is kept."""
    from repro.resilience import parse_policy

    try:
        parse_policy(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return text


def _parse_ladder(text: str) -> list[str]:
    """``A>B>C`` fallback chain; every rung must be a registered codec."""
    rungs = [r.strip() for r in text.split(">") if r.strip()]
    if not rungs:
        raise argparse.ArgumentTypeError(f"bad ladder {text!r}; expected e.g. SZ_T>GZIP")
    known = set(available_compressors())
    for rung in rungs:
        if rung not in known:
            raise argparse.ArgumentTypeError(
                f"unknown ladder rung {rung!r}; choose from {sorted(known)}"
            )
    return rungs


def _bound_from(args) -> AbsoluteBound | RelativeBound | PrecisionBound:
    chosen = [
        b for b in (
            ("rel", args.rel_bound), ("abs", args.abs_bound), ("prec", args.precision)
        ) if b[1] is not None
    ]
    if len(chosen) != 1:
        raise SystemExit("specify exactly one of --rel-bound / --abs-bound / --precision")
    kind, value = chosen[0]
    if kind == "rel":
        return RelativeBound(value)
    if kind == "abs":
        return AbsoluteBound(value)
    return PrecisionBound(value)


def _read_blob(path: str) -> bytes:
    with open(path, "rb") as fh:
        return fh.read()


# -- commands ----------------------------------------------------------------


def _journaled_compress(args, bound) -> int:
    from repro.resilience import run_compress_job

    result = run_compress_job(
        args.input,
        args.output,
        bound,
        journal_dir=args.journal,
        shape=args.shape,
        dtype=args.dtype,
        compressor=args.compressor,
        safeguards=list(args.safeguard) if args.safeguard else None,
        ladder=args.ladder,
        policy=args.policy,
        chunk_bytes=args.chunk_size,
        workers=args.workers,
        parity=args.parity,
        group_size=args.group_size if args.parity is not None else None,
        chunk_timeout=args.chunk_timeout,
    )
    print(f"{args.input}: {result.summary()}")
    return 0


def _cmd_compress(args) -> int:
    bound = _bound_from(args)
    if args.journal is not None:
        return _journaled_compress(args, bound)
    data = load_array(args.input, args.shape, np.dtype(args.dtype))
    compressor: object = args.compressor
    label = args.compressor
    if args.safeguard:
        from repro.safeguards import SafeguardedCompressor

        compressor = SafeguardedCompressor(args.compressor, args.safeguard)
        label = f"SAFE({args.compressor}; {'; '.join(args.safeguard)})"
    if args.ladder:
        from repro.resilience import DegradationLadder

        compressor = DegradationLadder.with_fallbacks(compressor, args.ladder)
        label = ">".join([label, *compressor.rung_names[1:]])
    chunked_opts = (
        args.chunk_size, args.workers, args.parity, args.chunk_timeout, args.policy,
    )
    if any(v is not None for v in chunked_opts):
        from repro.core.chunked import ChunkedCompressor

        kwargs = {}
        if args.chunk_size is not None:
            kwargs["chunk_bytes"] = args.chunk_size
        if args.workers is not None:
            kwargs["workers"] = args.workers
        if args.parity is not None:
            kwargs["parity"] = args.parity
            kwargs["group_size"] = args.group_size
        if args.chunk_timeout is not None:
            kwargs["timeout"] = args.chunk_timeout
        if args.policy is not None:
            kwargs["policy"] = args.policy
        chunked = ChunkedCompressor(compressor, **kwargs)
        blob = compress(data, bound, compressor=chunked)
        label = (
            f"{label} ({chunked.last_chunk_count} chunks x "
            f"{chunked.workers} workers"
            + (f", k={chunked.parity} parity" if chunked.parity else "")
            + ")"
        )
        if chunked.last_resilience is not None and not chunked.last_resilience.quiet:
            print(f"resilience: {chunked.last_resilience.summary()}", file=sys.stderr)
    else:
        blob = compress(data, bound, compressor=compressor)
    with open(args.output, "wb") as fh:
        fh.write(blob)
    line = (
        f"{args.input}: {data.nbytes} -> {len(blob)} bytes "
        f"({data.nbytes / len(blob):.2f}x) with {label}"
    )
    rel_value = bound.value if isinstance(bound, RelativeBound) else None
    if rel_value is None and args.safeguard:
        # A declared rel:BR safeguard guarantees the bound even when the
        # inner codec was driven by an absolute/precision bound.
        rel_value = getattr(compressor, "declared_rel_bound", None)
    if rel_value is not None:
        stats = bounded_fraction(data, decompress(blob), rel_value)
        line += f", bounded {stats.bounded_label()}, max rel err {stats.max_rel:.3e}"
    print(line)
    if args.report:
        from repro.report import quality_report

        print(quality_report(data, blob).format())
    return 0


def _cmd_decompress(args) -> int:
    if args.journal is not None:
        if args.tolerate_corruption:
            print("error: --journal and --tolerate-corruption are mutually "
                  "exclusive (resume needs deterministic chunk output)",
                  file=sys.stderr)
            return 2
        from repro.resilience import run_decompress_job

        result = run_decompress_job(args.input, args.output, journal_dir=args.journal)
        print(f"{args.output}: {result.summary()}")
        return 0
    blob = _read_blob(args.input)
    if args.tolerate_corruption:
        from repro.core.chunked import recover_array

        recon, report = recover_array(blob, args.fill)
        if recon is None:
            print(f"error: {args.input}: unrecoverable: {report.failures[0].error}",
                  file=sys.stderr)
            return 2
        if report is not None:
            print(f"{args.input}: {report.summary()}", file=sys.stderr)
    else:
        recon = decompress(blob)
    save_array(args.output, recon)
    print(f"{args.output}: {recon.shape} {recon.dtype}")
    return 0


def _cmd_resume(args) -> int:
    from repro.resilience import resume_job

    result = resume_job(args.journal)
    print(result.summary())
    return 0


def _cmd_info(args) -> int:
    blob = _read_blob(args.input)
    box = Container.from_bytes(blob)
    print(f"codec:  {box.codec}")
    print(f"shape:  {box.get_shape('shape')}")
    print(f"dtype:  {box.get_dtype('dtype').name}")
    print(f"bytes:  {len(blob)}")
    print(f"format: v{box.version}" + (" (checksummed)" if box.checksummed else ""))
    if box.codec == "SAFE":
        specs = box.get_str("safeguards")
        print(f"inner:  {box.get_str('inner_codec')}")
        print(f"safeguards: {specs.replace(';', '; ') if specs else '(none)'}")
        print(f"patched: {box.get_u64('n_patch')} point(s)")
    if box.codec == "CHUNKED":
        print(f"inner:  {box.get_str('inner_codec')}")
        print(f"chunks: {box.get_u64('n_chunks')}")
        if "ladder" in box:
            print(f"ladder: {box.get_str('ladder')}")
        if "chunk_codecs" in box:
            from collections import Counter

            codecs = box.get_str("chunk_codecs").split(";")
            mix = Counter(codecs)
            primary = (
                box.get_str("ladder").split(">") if "ladder" in box else codecs
            )[0]
            degraded = sum(n for c, n in mix.items() if c != primary)
            parts = ", ".join(f"{n}x {c}" for c, n in sorted(mix.items()))
            print(f"codec mix: {parts}"
                  + (f" ({degraded} chunk(s) fell back)" if degraded else ""))
        if "parity_k" in box:
            print(
                f"parity: k={box.get_u64('parity_k')} per group of "
                f"{box.get_u64('group_size')} "
                f"({len(box.get('parity'))} parity bytes)"
            )
    kinds: dict[str, str] = {}
    overhead = None
    try:
        from repro.observe.quality import attribute_bytes, section_kind_map

        tree = attribute_bytes(blob)
        kinds = section_kind_map(tree)
        totals = tree.kind_totals()
        overhead = totals.get("framing", 0) + totals.get("checksum", 0)
    except Exception:  # noqa: BLE001 - attribution is descriptive, never fatal
        pass
    for key in box.keys():
        line = f"  section {key:12s} {len(box.get(key)):10d} B"
        if key in kinds:
            line += f"  [{kinds[key]}]"
        print(line)
    if overhead is not None:
        print(f"container overhead: {overhead} B framing+CRC "
              f"({100.0 * overhead / len(blob):.2f}%)")
    return 0


def _cmd_stats(args) -> int:
    from repro.report import build_report

    blob = _read_blob(args.input)
    if args.top:
        # Hot-spot table wants the decode's span tree: force tracing on
        # for this command and capture into a private sink.
        from repro.observe import get_tracer, render_top_spans

        tracer = get_tracer()
        was_enabled = tracer.enabled
        tracer.enabled = True
        try:
            with tracer.capture() as captured:
                report = build_report(blob)
        finally:
            tracer.enabled = was_enabled
        print(report.format())
        print()
        print(render_top_spans(captured, n=args.top))
    else:
        print(build_report(blob).format())
    return 0


def _cmd_profile(args) -> int:
    rest = list(args.cmd)
    if rest and rest[0] == "--":
        rest = rest[1:]
    if not rest:
        print("error: profile: missing command to run, e.g. "
              "repro-compress profile compress in.npy out.rpz --rel-bound 1e-3",
              file=sys.stderr)
        return 2
    if rest[0] == "profile":
        print("error: profile: cannot nest profile commands", file=sys.stderr)
        return 2
    from repro.observe import (
        enable_tracing,
        get_tracer,
        install_profiler,
        uninstall_profiler,
    )

    # Samples are attributed to the innermost open span, so tracing must
    # be on for the duration even when the wrapped command didn't ask.
    enable_tracing(True)
    get_tracer().clear()
    try:
        install_profiler(hz=args.hz, memory=args.memory)
    except ValueError as exc:
        print(f"error: profile: {exc}", file=sys.stderr)
        return 2
    try:
        try:
            code = main(rest)
        except SystemExit as exc:  # nested argparse error: still report
            code = exc.code if isinstance(exc.code, int) else 2
    finally:
        profile = uninstall_profiler()
    fmt = args.format or ("speedscope" if args.profile_out else "table")
    if fmt == "speedscope":
        text = profile.speedscope_json(name=" ".join(rest), indent=2) + "\n"
    elif fmt == "collapsed":
        text = profile.collapsed()
    else:
        text = profile.table() + "\n"
    if args.profile_out:
        with open(args.profile_out, "w") as fh:
            fh.write(text)
        print(
            f"profile: {profile.n_samples} samples over "
            f"{profile.duration_s:.3f}s at {profile.hz:g} Hz -> "
            f"{args.profile_out} ({fmt})",
            file=sys.stderr,
        )
    else:
        sys.stdout.write(text)
    return code


def _cmd_perf(args) -> int:
    from repro.observe.ledger import (
        LedgerError,
        read_ledger,
        render_trend_report,
        resolve_ledger_path,
    )

    path = args.ledger or resolve_ledger_path()
    if not path:
        print("error: perf: ledger disabled (REPRO_LEDGER=off) and no --ledger",
              file=sys.stderr)
        return 2
    try:
        entries = read_ledger(path)
    except LedgerError as exc:
        print(f"error: perf: {exc}", file=sys.stderr)
        return 2
    report = render_trend_report(entries, last_n=args.last)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report)
        print(f"perf: wrote {args.out} ({len(entries)} ledger entries)")
    else:
        sys.stdout.write(report)
    return 0


def _cmd_audit(args) -> int:
    from repro.report import audit_report

    blob = _read_blob(args.input)
    original = None
    if args.original is not None:
        original = load_array(args.original, args.shape, np.dtype(args.dtype))
    try:
        report = audit_report(blob, original, check_theorem3=not args.no_theorem3)
    except ValueError as exc:
        print(f"error: {args.input}: {exc}", file=sys.stderr)
        return 2
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, default=str)
    print(f"{args.input}:")
    print(report.format())
    return 0 if report.ok else 2


def _cmd_explain(args) -> int:
    from repro.observe.quality import explain_stream

    blob = _read_blob(args.input)
    original = None
    if args.original is not None:
        original = load_array(args.original, args.shape, np.dtype(args.dtype))
    report = explain_stream(blob, original, mad_k=args.mad_k)
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, default=str)
    text = report.format(max_depth=args.depth)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"explain: wrote {args.out}")
    else:
        sys.stdout.write(text)
    return 0 if report.ok else 2


def _cmd_verify(args) -> int:
    from repro.integrity import verify_stream

    report = verify_stream(_read_blob(args.input))
    print(f"{args.input}: {report.summary()}")
    for note in report.notes:
        print(f"  note: {note}")
    return 0 if report.ok else 2


def _cmd_repair(args) -> int:
    from repro.integrity import repair_stream

    blob = _read_blob(args.input)
    fixed, report = repair_stream(blob)
    with open(args.output, "wb") as fh:
        fh.write(fixed)
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
    print(f"{args.input}: {report.summary()}")
    return 0 if report.ok else 2


def _cmd_faults(args) -> int:
    from repro.testing import faults

    blob = _read_blob(args.input)
    if args.mode == "bit-flip":
        out = faults.flip_random_bits(blob, n=args.count, seed=args.seed)
    elif args.mode == "truncate":
        out = faults.truncate(blob, args.keep)
    elif args.mode == "drop-section":
        out = faults.drop_section(blob, args.key)
    elif args.mode == "corrupt-section":
        out = faults.corrupt_section(blob, args.key, n_bits=args.count, seed=args.seed)
    elif args.mode == "corrupt-safeguards":
        out = faults.corrupt_safeguards(blob, n_bits=args.count, seed=args.seed)
    else:  # corrupt-chunk
        out = faults.corrupt_chunk(blob, args.index, n_bits=args.count, seed=args.seed)
    with open(args.output, "wb") as fh:
        fh.write(out)
    print(f"{args.output}: {args.mode} applied, {len(blob)} -> {len(out)} bytes")
    return 0


# -- entry point -------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-compress",
        description="Error-bounded lossy compression of binary/npy fields.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    comp = sub.add_parser("compress", help="compress a field file")
    comp.add_argument("input")
    comp.add_argument("output")
    comp.add_argument("--shape", type=_parse_shape, default=None,
                      help="comma-separated dims for raw binary input")
    comp.add_argument("--dtype", choices=["float32", "float64"], default="float32")
    comp.add_argument("--compressor", choices=available_compressors(), default="SZ_T")
    comp.add_argument("--rel-bound", type=float, default=None,
                      help="point-wise relative error bound")
    comp.add_argument("--abs-bound", type=float, default=None,
                      help="absolute error bound")
    comp.add_argument("--precision", type=int, default=None,
                      help="bit precision (FPZIP / ZFP_P)")
    comp.add_argument("--safeguard", action="append", type=_parse_safeguard_spec,
                      default=None, metavar="SPEC",
                      help="wrap the compressor so a point-wise property is "
                           "guaranteed bit-exactly (repeatable): abs:EB, "
                           "rel:BR, ulp:K, sign, zero, nonfinite, "
                           "monotone:axis=N, range or range:LO,HI")
    comp.add_argument("--report", action="store_true",
                      help="print a full quality report after compressing")
    comp.add_argument("--chunk-size", type=_parse_size, default=None, metavar="SIZE",
                      help="split into chunks of SIZE bytes (K/M/G suffix allowed) "
                           "and compress them in parallel")
    comp.add_argument("--workers", type=_positive_int, default=None, metavar="N",
                      help="parallel chunk workers (default: all available CPUs; "
                           "implies --chunk-size 4M when set alone)")
    comp.add_argument("--parity", type=_positive_int, default=None, metavar="K",
                      help="store K Reed-Solomon parity blocks per chunk group "
                           "(writes a v3 stream; implies chunking)")
    comp.add_argument("--group-size", type=_positive_int, default=8, metavar="M",
                      help="data chunks per parity group (default 8)")
    comp.add_argument("--chunk-timeout", type=float, default=None, metavar="SEC",
                      help="per-chunk watchdog deadline: hung workers are "
                           "cancelled and retried (implies chunking)")
    comp.add_argument("--policy", type=_parse_policy_spec, default=None,
                      metavar="SPEC",
                      help="resilience policy spec, e.g. 'retries=3;backoff=0.1;"
                           "chunk-timeout=2;job-timeout=60;memory=512M;"
                           "breaker=0.5/10;ladder=SZ_T>GZIP' (implies chunking; "
                           "see docs/resilience.md)")
    comp.add_argument("--ladder", type=_parse_ladder, default=None, metavar="A>B",
                      help="graceful-degradation fallback chain tried in order "
                           "when the compressor fails, hangs or breaks the "
                           "bound, e.g. SZ_T>GZIP")
    comp.add_argument("--journal", default=None, metavar="DIR",
                      help="write-ahead journal directory: the job can be "
                           "killed at any point and finished with "
                           "'repro-compress resume DIR', producing the same "
                           "bytes as an uninterrupted run")

    dec = sub.add_parser("decompress", help="reconstruct a compressed stream")
    dec.add_argument("input")
    dec.add_argument("output")
    dec.add_argument("--tolerate-corruption", action="store_true",
                     help="repair parity-covered chunks and recover intact "
                          "chunks of a damaged stream (report goes to stderr)")
    dec.add_argument("--fill", type=_parse_fill, default="nan", metavar="MODE",
                     help="fill for unrecoverable spans with "
                          "--tolerate-corruption: nan, zero, nearest, or a "
                          "number (default nan)")
    dec.add_argument("--journal", default=None, metavar="DIR",
                     help="write-ahead journal directory enabling crash-safe "
                          "resume via 'repro-compress resume DIR'")

    res = sub.add_parser(
        "resume",
        help="finish an interrupted journaled compress/decompress job: "
             "re-does only chunks the journal has no valid record for and "
             "commits the identical output an uninterrupted run produces",
    )
    res.add_argument("journal", help="journal directory of the interrupted job")

    info = sub.add_parser("info", help="describe a compressed stream")
    info.add_argument("input")

    stats = sub.add_parser(
        "stats",
        help="decode a stream once and report chunk count, per-section "
             "sizes and decode-side telemetry (CRC verification time)",
    )
    stats.add_argument("input")
    stats.add_argument("--top", type=_positive_int, default=None, metavar="N",
                       help="also print the N slowest pipeline spans by "
                            "self-time (wall and CPU), from the decode's "
                            "trace tree")

    prof = sub.add_parser(
        "profile",
        help="run another repro-compress command under the sampling "
             "profiler and emit a span-attributed profile "
             "(speedscope flamegraph JSON, collapsed stacks, or a table)",
    )
    prof.add_argument("--hz", type=float, default=97.0,
                      help="sampling rate in Hz (default 97; prime so it "
                           "cannot phase-lock with periodic work)")
    prof.add_argument("--memory", action="store_true",
                      help="also run tracemalloc and record per-span "
                           "allocation high-water marks")
    prof.add_argument("--profile-out", default=None, metavar="PATH",
                      help="write the profile here (default: stdout)")
    prof.add_argument("--format", choices=["speedscope", "collapsed", "table"],
                      default=None,
                      help="output format (default: speedscope with "
                           "--profile-out, table otherwise)")
    prof.add_argument("cmd", nargs=argparse.REMAINDER, metavar="command",
                      help="the repro-compress command to profile, e.g. "
                           "compress in.npy out.rpz --rel-bound 1e-3")

    perf = sub.add_parser(
        "perf",
        help="performance-ledger tooling (see docs/observability.md)",
    )
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)
    perf_report = perf_sub.add_parser(
        "report",
        help="render the markdown trend report from the benchmark ledger",
    )
    perf_report.add_argument("--ledger", default=None, metavar="PATH",
                             help="ledger path (default: $REPRO_LEDGER or "
                                  "./results/ledger.jsonl)")
    perf_report.add_argument("--last", type=_positive_int, default=10,
                             help="trend window: newest N runs per bench "
                                  "(default 10)")
    perf_report.add_argument("--out", default=None, metavar="PATH",
                             help="write the markdown here instead of stdout")

    audit = sub.add_parser(
        "audit",
        help="audit a stream's error-bound conformance: per-chunk max "
             "relative error vs the recorded bound, Lemma 2's b_a' check, "
             "Theorem 3's cross-base index deviation (exit 0 = conformant, "
             "2 = violated)",
    )
    audit.add_argument("input")
    audit.add_argument("--original", default=None, metavar="PATH",
                       help="original field file; enables the point-wise "
                            "error audit and the Theorem 3 check")
    audit.add_argument("--shape", type=_parse_shape, default=None,
                       help="comma-separated dims for a raw binary --original")
    audit.add_argument("--dtype", choices=["float32", "float64"], default="float32")
    audit.add_argument("--json", default=None, metavar="PATH",
                       help="additionally write the full audit report as JSON")
    audit.add_argument("--no-theorem3", action="store_true",
                       help="skip the cross-base quantization-index check")

    for traceable in (comp, dec, stats):
        traceable.add_argument("--trace", action="store_true",
                               help="print the pipeline span tree afterwards")
        traceable.add_argument("--trace-json", default=None, metavar="PATH",
                               help="write the span tree as JSON to PATH")
    for exportable in (comp, dec, stats, audit):
        exportable.add_argument(
            "--metrics-out", choices=["openmetrics", "jsonl"], default=None,
            help="after the command, export the metrics this run moved "
                 "(registry diff) in the chosen format")
        exportable.add_argument(
            "--metrics-path", default=None, metavar="PATH",
            help="write --metrics-out output to PATH instead of stdout")

    expl = sub.add_parser(
        "explain",
        help="byte-attribution and quality report for a stream: who owns "
             "each byte (framing, CRCs, entropy table vs payload, outliers, "
             "safeguard patches, parity), per-chunk anomaly flags, and -- "
             "with --original -- the point-wise error distribution "
             "(exit 0 = intact, 2 = damaged)",
    )
    expl.add_argument("input")
    expl.add_argument("--original", default=None, metavar="PATH",
                      help="original field file; enables the point-wise "
                           "error-quality section of the report")
    expl.add_argument("--shape", type=_parse_shape, default=None,
                      help="comma-separated dims for a raw binary --original")
    expl.add_argument("--dtype", choices=["float32", "float64"], default="float32")
    expl.add_argument("--json", default=None, metavar="PATH",
                      help="additionally write the full explain report as JSON")
    expl.add_argument("--out", default=None, metavar="PATH",
                      help="write the markdown report to PATH instead of stdout")
    expl.add_argument("--mad-k", type=float, default=5.0,
                      help="anomaly threshold: flag chunks deviating more than "
                           "K median-absolute-deviations from the stream "
                           "median (default 5.0)")
    expl.add_argument("--depth", type=_positive_int, default=3,
                      help="attribution-tree depth in the markdown (default 3)")

    ver = sub.add_parser(
        "verify",
        help="check checksums and structure without decompressing "
             "(exit 0 = intact, 2 = damaged)",
    )
    ver.add_argument("input")

    rep = sub.add_parser(
        "repair",
        help="rebuild damaged chunks of a parity-bearing (v3) stream from "
             "Reed-Solomon parity (exit 0 = fully repaired, 2 = losses remain)",
    )
    rep.add_argument("input")
    rep.add_argument("output")
    rep.add_argument("--json", default=None, metavar="PATH",
                     help="write the per-chunk RepairReport as JSON")

    flt = sub.add_parser(
        "faults",
        help="inject a deterministic fault into a stream (testing/repro)",
    )
    flt.add_argument("mode", choices=[
        "bit-flip", "truncate", "drop-section", "corrupt-section", "corrupt-chunk",
        "corrupt-safeguards",
    ])
    flt.add_argument("input")
    flt.add_argument("output")
    flt.add_argument("--seed", type=int, default=0,
                     help="RNG seed for the random-bit modes (default 0)")
    flt.add_argument("--count", type=_positive_int, default=1, metavar="N",
                     help="number of bits to flip (default 1)")
    flt.add_argument("--keep", type=_parse_keep, default=0.5,
                     help="truncate: bytes to keep (int) or fraction (float, "
                          "default 0.5)")
    flt.add_argument("--key", default="payload",
                     help="section name for drop-section / corrupt-section "
                          "(default 'payload')")
    flt.add_argument("--index", type=int, default=0,
                     help="chunk index for corrupt-chunk (default 0)")

    args = parser.parse_args(argv)
    handler = {
        "compress": _cmd_compress,
        "decompress": _cmd_decompress,
        "resume": _cmd_resume,
        "info": _cmd_info,
        "stats": _cmd_stats,
        "audit": _cmd_audit,
        "explain": _cmd_explain,
        "verify": _cmd_verify,
        "repair": _cmd_repair,
        "faults": _cmd_faults,
        "profile": _cmd_profile,
        "perf": _cmd_perf,
    }[args.command]
    tracing = bool(getattr(args, "trace", False) or getattr(args, "trace_json", None))
    if tracing:
        from repro.observe import enable_tracing, get_tracer

        enable_tracing(True)
        get_tracer().clear()
    metrics_fmt = getattr(args, "metrics_out", None)
    if metrics_fmt:
        from repro.observe import metrics as _registry

        metrics_before = _registry().snapshot()
    try:
        return handler(args)
    except StreamError as exc:
        print(f"error: {getattr(args, 'input', '?')}: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ResilienceError, UnsupportedBound, ValueError) as exc:
        # Expected "the request cannot be satisfied" failures: bad specs,
        # unsupported bounds, exhausted ladders, unresumable journals.
        # One line, exit 1 -- distinct from bad data/environment (2).
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if tracing:
            tracer = get_tracer()
            if args.trace_json:
                with open(args.trace_json, "w") as fh:
                    fh.write(tracer.to_json())
            if args.trace:
                rendered = tracer.render()
                if rendered:
                    print(rendered)
        if metrics_fmt:
            from repro.observe import metrics_to_jsonl, to_openmetrics

            delta = _registry().diff(metrics_before)
            text = (
                to_openmetrics(delta)
                if metrics_fmt == "openmetrics"
                else metrics_to_jsonl(delta)
            )
            if args.metrics_path:
                with open(args.metrics_path, "w") as fh:
                    fh.write(text)
            else:
                sys.stdout.write(text)


def _entry() -> int:  # pragma: no cover - thin wrapper for console_scripts
    try:
        return main()
    except BrokenPipeError:
        # stdout consumer (e.g. `| head`) went away; exit quietly like
        # well-behaved unix tools.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(_entry())
