"""Compression-quality metrics used throughout the evaluation."""

from repro.metrics.angles import blockwise_mean_skew, skew_angles
from repro.metrics.error import ErrorStats, bounded_fraction, relative_errors
from repro.metrics.rate import (
    bit_rate,
    compression_ratio,
    psnr,
    relative_psnr,
)

__all__ = [
    "ErrorStats",
    "bit_rate",
    "blockwise_mean_skew",
    "bounded_fraction",
    "compression_ratio",
    "psnr",
    "relative_errors",
    "relative_psnr",
    "skew_angles",
]
