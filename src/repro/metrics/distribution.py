"""Error-distribution analysis (the paper's reference [7]).

Lindstrom's JSM'17 study, cited by the paper, characterizes compressor
error *distributions*: SZ's linear-scaling quantization yields errors
nearly uniform over ``[-eb, +eb]``, while ZFP's transform averages many
quantization errors and comes out bell-shaped and over-preserving.  These
shapes matter downstream (uniform error is unbiased white noise;
Gaussian-ish error correlates across a block), so the library exposes the
measurement and an experiment regenerating the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = ["ErrorDistribution", "error_distribution", "error_autocorrelation"]


@dataclass(frozen=True)
class ErrorDistribution:
    """Shape summary of point-wise errors scaled to the bound.

    ``scaled`` moments are of ``err / bound`` (so uniform on the full bin
    has std ``1/sqrt(3) ~ 0.577``); ``uniform_ks``/``normal_ks`` are
    Kolmogorov-Smirnov distances to the best-fitting uniform/normal
    references (smaller = closer).
    """

    mean: float
    std: float
    skewness: float
    excess_kurtosis: float
    uniform_ks: float
    normal_ks: float
    fill: float  # max |err| / bound: how much of the budget is used

    @property
    def looks_uniform(self) -> bool:
        return self.uniform_ks < self.normal_ks

    @property
    def looks_normal(self) -> bool:
        return self.normal_ks < self.uniform_ks


def error_distribution(
    original: np.ndarray, recon: np.ndarray, bound: float
) -> ErrorDistribution:
    """Characterize signed errors ``recon - original`` against ``bound``."""
    if bound <= 0:
        raise ValueError(f"bound must be positive, got {bound}")
    err = (
        np.asarray(recon, dtype=np.float64).ravel()
        - np.asarray(original, dtype=np.float64).ravel()
    ) / bound
    if err.size < 8:
        raise ValueError("need at least 8 samples to characterize a distribution")

    std = float(err.std())
    half = float(np.abs(err).max())
    if half == 0 or std == 0:
        # exact reconstruction: degenerate (report zeros, KS against the
        # point mass is 0 for both references by convention)
        return ErrorDistribution(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    uniform_ks = float(stats.kstest(err, stats.uniform(-half, 2 * half).cdf).statistic)
    normal_ks = float(stats.kstest(err, stats.norm(err.mean(), std).cdf).statistic)
    return ErrorDistribution(
        mean=float(err.mean()),
        std=std,
        skewness=float(stats.skew(err)),
        excess_kurtosis=float(stats.kurtosis(err)),
        uniform_ks=uniform_ks,
        normal_ks=normal_ks,
        fill=half,
    )


def error_autocorrelation(
    original: np.ndarray, recon: np.ndarray, max_lag: int = 8
) -> np.ndarray:
    """Spatial autocorrelation of the signed error along the last axis.

    Quantization-style errors (SZ) are white -- near-zero at every lag;
    transform-domain errors (ZFP) are correlated across each 4-wide block.
    Returns correlations for lags ``1..max_lag``.
    """
    err = np.asarray(recon, dtype=np.float64) - np.asarray(original, dtype=np.float64)
    err = err.reshape(-1, err.shape[-1]) if err.ndim > 1 else err[None, :]
    n = err.shape[-1]
    if max_lag < 1 or max_lag >= n:
        raise ValueError(f"max_lag must be in [1, {n - 1}], got {max_lag}")
    err = err - err.mean()
    denom = float((err**2).sum())
    if denom == 0:
        return np.zeros(max_lag)
    out = np.zeros(max_lag)
    for lag in range(1, max_lag + 1):
        out[lag - 1] = float((err[:, :-lag] * err[:, lag:]).sum()) / denom
    return out
