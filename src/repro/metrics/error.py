"""Point-wise error statistics (the columns of the paper's Table IV).

Zero handling follows the paper's convention: a point whose original value
is exactly zero counts as *bounded* iff it decompresses to exactly zero
(a compressor that "modifies original 0" earns the table's ``*`` marker);
its relative error is excluded from the Avg E / Max E statistics, which
are otherwise ``|x - x_d| / |x|``.  Non-finite originals (NaN/Inf, legal
input for codecs with ``allows_nonfinite``) follow the same idea: bounded
iff preserved exactly, excluded from the relative statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ErrorStats", "relative_errors", "bounded_fraction"]


@dataclass(frozen=True)
class ErrorStats:
    """Summary of point-wise errors between an array and its reconstruction."""

    max_abs: float
    max_rel: float
    avg_rel: float
    bounded_fraction: float  # fraction of points within the relative bound
    zeros_modified: int  # original zeros that no longer decode to zero
    n: int

    @property
    def strictly_bounded(self) -> bool:
        return self.bounded_fraction == 1.0

    def bounded_label(self) -> str:
        """Table-IV style label: '100%', '~100%', '99.93%', with '*' for
        modified zeros."""
        f = self.bounded_fraction
        if f == 1.0:
            label = "100%"
        elif f > 0.9999:
            label = "~100%"
        else:
            label = f"{100 * f:.2f}%"
        return label + ("*" if self.zeros_modified else "")


def relative_errors(original: np.ndarray, recon: np.ndarray) -> np.ndarray:
    """``|x - x_d| / |x|`` over non-zero originals (flattened)."""
    x = np.asarray(original, dtype=np.float64).ravel()
    xd = np.asarray(recon, dtype=np.float64).ravel()
    nz = x != 0
    return np.abs(xd[nz] - x[nz]) / np.abs(x[nz])


def bounded_fraction(
    original: np.ndarray, recon: np.ndarray, rel_bound: float
) -> ErrorStats:
    """Evaluate a reconstruction against a point-wise relative bound."""
    x = np.asarray(original, dtype=np.float64).ravel()
    xd = np.asarray(recon, dtype=np.float64).ravel()
    if x.shape != xd.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {xd.shape}")
    finite = np.isfinite(x)
    with np.errstate(invalid="ignore"):
        err = np.abs(xd - x)
    zeros = finite & (x == 0)
    nz = finite & ~zeros
    zeros_modified = int((err[zeros] > 0).sum())
    rel = err[nz] / np.abs(x[nz])
    # A non-finite original is bounded iff reproduced exactly (NaN counts
    # as matching NaN); its relative error is meaningless, so it is
    # excluded from the max/avg statistics like a zero.
    nonfinite_kept = (~finite) & ((xd == x) | (np.isnan(x) & np.isnan(xd)))
    ok = (
        int((rel <= rel_bound).sum())
        + int((err[zeros] == 0).sum())
        + int(nonfinite_kept.sum())
    )
    return ErrorStats(
        max_abs=float(err[finite].max(initial=0.0)),
        max_rel=float(rel.max(initial=0.0)),
        avg_rel=float(rel.mean()) if rel.size else 0.0,
        # an empty reconstruction satisfies the bound vacuously
        bounded_fraction=ok / x.size if x.size else 1.0,
        zeros_modified=zeros_modified,
        n=x.size,
    )
