"""Rate metrics: compression ratio, bit-rate, PSNR variants.

``relative_psnr`` is the paper's Figure-1 metric: PSNR computed on
point-wise *relative* errors with the value range set to 1, i.e.
``-20 log10(rms(relative errors))``.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["compression_ratio", "bit_rate", "psnr", "relative_psnr"]


def compression_ratio(original_nbytes: int, compressed_nbytes: int) -> float:
    """Plain size ratio; > 1 means the stream shrank."""
    if compressed_nbytes <= 0:
        raise ValueError("compressed size must be positive")
    return original_nbytes / compressed_nbytes


def bit_rate(compressed_nbytes: int, n_values: int) -> float:
    """Bits used per value (the x-axis of the paper's Figure 1)."""
    if n_values <= 0:
        raise ValueError("n_values must be positive")
    return 8.0 * compressed_nbytes / n_values


def psnr(original: np.ndarray, recon: np.ndarray) -> float:
    """Classic PSNR against the data's value range."""
    x = np.asarray(original, dtype=np.float64)
    xd = np.asarray(recon, dtype=np.float64)
    rng = float(x.max() - x.min())
    mse = float(np.mean((x - xd) ** 2))
    if mse == 0:
        return math.inf
    if rng == 0:
        raise ValueError("PSNR undefined for constant data")
    return 20 * math.log10(rng) - 10 * math.log10(mse)


def relative_psnr(original: np.ndarray, recon: np.ndarray) -> float:
    """PSNR on point-wise relative errors with range fixed at 1 (Fig. 1).

    Zero-valued originals are excluded (their relative error is
    undefined); exact reconstructions yield ``inf``.
    """
    x = np.asarray(original, dtype=np.float64).ravel()
    xd = np.asarray(recon, dtype=np.float64).ravel()
    nz = x != 0
    rel = (xd[nz] - x[nz]) / x[nz]
    mse = float(np.mean(rel**2))
    if mse == 0:
        return math.inf
    return -10 * math.log10(mse)
