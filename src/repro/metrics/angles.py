r"""Velocity angle-skew analysis (the paper's Figure 5).

A particle's *skew angle* is the angle between its original 3-D velocity
and its reconstructed velocity:

.. math:: \theta = \arccos\frac{\vec v \cdot \vec v_d}{\|\vec v\|\,\|\vec v_d\|}

The paper scatters HACC particles into a coarse spatial grid and plots the
mean skew per cell; :func:`blockwise_mean_skew` reproduces that reduction
over the linear particle index (our particles carry no positions, so cells
are index ranges -- the reduction and the SZ_ABS/FPZIP/SZ_T ordering are
unaffected).
"""

from __future__ import annotations

import numpy as np

__all__ = ["skew_angles", "blockwise_mean_skew"]


def skew_angles(
    original: tuple[np.ndarray, np.ndarray, np.ndarray],
    recon: tuple[np.ndarray, np.ndarray, np.ndarray],
) -> np.ndarray:
    """Per-particle skew angle in degrees between velocity triples."""
    v = np.stack([np.asarray(c, dtype=np.float64).ravel() for c in original])
    vd = np.stack([np.asarray(c, dtype=np.float64).ravel() for c in recon])
    if v.shape != vd.shape:
        raise ValueError(f"component shape mismatch: {v.shape} vs {vd.shape}")
    dot = (v * vd).sum(axis=0)
    norm = np.linalg.norm(v, axis=0) * np.linalg.norm(vd, axis=0)
    with np.errstate(invalid="ignore", divide="ignore"):
        cos = np.where(norm > 0, dot / norm, 1.0)
    return np.degrees(np.arccos(np.clip(cos, -1.0, 1.0)))


def blockwise_mean_skew(angles: np.ndarray, cells: int) -> np.ndarray:
    """Mean skew angle over ``cells`` equal index ranges (Figure 5 cells)."""
    a = np.asarray(angles, dtype=np.float64).ravel()
    if cells <= 0 or cells > a.size:
        raise ValueError(f"cells must be in [1, {a.size}], got {cells}")
    usable = a.size - a.size % cells
    return a[:usable].reshape(cells, -1).mean(axis=1)
