"""Multi-field archives: one byte stream for a whole snapshot.

Simulation snapshots carry tens of named fields (Table I lists 101); this
module packs every field's compressed stream into a single
self-describing archive, the way a dump step would write one object per
rank.  Fields may use different compressors and bounds -- the triage
pattern from ``examples/climate_ensemble.py``.
"""

from __future__ import annotations

import numpy as np

from repro.compressors.base import Compressor, ErrorBound
from repro.encoding.container import Container

__all__ = ["compress_dataset", "decompress_dataset", "archive_manifest"]

_CODEC = "ARCHIVE"


def compress_dataset(
    fields: dict[str, np.ndarray],
    bound: ErrorBound | dict[str, ErrorBound],
    compressor: str | Compressor | dict[str, str | Compressor] = "SZ_T",
) -> bytes:
    """Compress named fields into one archive.

    ``bound`` and ``compressor`` may be single values applied to every
    field or per-field dictionaries (which must cover every field).
    """
    from repro import get_compressor

    if not fields:
        raise ValueError("archive needs at least one field")
    box = Container(_CODEC)
    box.put_u64("n_fields", len(fields))
    for name, data in fields.items():
        b = bound[name] if isinstance(bound, dict) else bound
        c = compressor[name] if isinstance(compressor, dict) else compressor
        if isinstance(c, str):
            c = get_compressor(c)
        box.put(f"field:{name}", c.compress(data, b))
    return box.to_bytes()


def decompress_dataset(blob: bytes) -> dict[str, np.ndarray]:
    """Reconstruct every field of an archive (insertion order preserved)."""
    from repro import decompress

    box = Container.from_bytes(blob)
    if box.codec != _CODEC:
        raise ValueError(f"not an archive stream (codec {box.codec!r})")
    out: dict[str, np.ndarray] = {}
    for key in box.keys():
        if key.startswith("field:"):
            out[key[len("field:"):]] = decompress(box.get(key))
    if len(out) != box.get_u64("n_fields"):
        raise ValueError("corrupt archive: field count mismatch")
    return out


def archive_manifest(blob: bytes) -> dict[str, dict]:
    """Per-field codec/shape/size summary without decompressing."""
    box = Container.from_bytes(blob)
    if box.codec != _CODEC:
        raise ValueError(f"not an archive stream (codec {box.codec!r})")
    manifest: dict[str, dict] = {}
    for key in box.keys():
        if not key.startswith("field:"):
            continue
        inner = Container.from_bytes(box.get(key))
        manifest[key[len("field:"):]] = {
            "codec": inner.codec,
            "shape": inner.get_shape("shape"),
            "dtype": inner.get_dtype("dtype").name,
            "nbytes": len(box.get(key)),
        }
    return manifest
