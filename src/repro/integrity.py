"""Stream verification without decompression: ``verify_stream``.

Answers "are these bytes trustworthy?" cheaply: structure, the v2 stream
CRC, every per-section CRC, CHUNKED chunk-table consistency, and a
recursive pass over the per-chunk / per-field sub-streams -- all without
running any decoder.  This is what ``repro-compress verify`` runs, and
what an HPC restart path would run on every rank file before committing
to a load.

Verification never raises on bad bytes: every defect becomes an entry in
the returned :class:`VerifyReport`.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field

import numpy as np

from repro.encoding.container import Container, StreamError
from repro.encoding.crc import crc32c

__all__ = ["VerifyReport", "verify_stream"]

_CRC_BYTES = 4


@dataclass
class VerifyReport:
    """Everything ``verify_stream`` learned about one byte stream.

    ``problems`` is the authoritative verdict: empty means every check
    passed.  ``checksummed`` is False for v1 streams, whose integrity
    cannot be vouched for -- that is reported as a note, not a problem.
    """

    nbytes: int
    codec: str | None = None
    version: int | None = None
    checksummed: bool = False
    n_sections: int = 0
    n_chunks: int | None = None
    problems: tuple[str, ...] = ()
    notes: tuple[str, ...] = field(default=())

    @property
    def ok(self) -> bool:
        return not self.problems

    def summary(self) -> str:
        head = (
            f"{self.codec or '?'} v{self.version or '?'} stream, "
            f"{self.nbytes} bytes, {self.n_sections} sections"
        )
        if self.n_chunks is not None:
            head += f", {self.n_chunks} chunks"
        if self.ok:
            verdict = "OK" if self.checksummed else "OK (v1: no checksums to verify)"
            return f"{head}: {verdict}"
        return f"{head}: {len(self.problems)} problem(s)\n" + "\n".join(
            f"  - {p}" for p in self.problems
        )


def _verify_chunk_table(box: Container, blob: bytes, problems: list[str]) -> int | None:
    """Check CHUNKED geometry + every per-chunk sub-stream. Returns n_chunks."""
    try:
        n = box.get_u64("n_chunks")
        offs = box.get_array("offs").astype(np.int64)
        lens = box.get_array("lens").astype(np.int64)
        elems = box.get_array("elems").astype(np.int64)
        shape = box.get_shape("shape")
        payload = box.get("payload")
    except StreamError as exc:
        problems.append(f"chunk table unreadable: {exc}")
        return None
    if not (offs.size == lens.size == elems.size == n):
        problems.append(
            f"chunk table size mismatch: n_chunks={n} but "
            f"{offs.size}/{lens.size}/{elems.size} table entries"
        )
        return int(n)
    if n:
        if (lens < 0).any() or (
            offs != np.concatenate([[0], np.cumsum(lens)[:-1]])
        ).any():
            problems.append("chunk offsets are not the cumulative sum of lengths")
        elif int(offs[-1] + lens[-1]) != len(payload):
            problems.append(
                f"payload holds {len(payload)} bytes but the chunk table "
                f"spans {int(offs[-1] + lens[-1])}"
            )
    if (elems <= 0).any() or int(elems.sum()) != math.prod(shape):
        problems.append(
            f"chunk element counts sum to {int(elems.sum())}, "
            f"shape needs {math.prod(shape)}"
        )
    for i, (o, ln) in enumerate(zip(offs, lens)):
        if o + ln > len(payload):
            problems.append(f"chunk {i}: bytes missing from payload")
            continue
        sub = verify_stream(payload[o : o + ln])
        problems.extend(f"chunk {i}: {p}" for p in sub.problems)
    return int(n)


def verify_stream(blob: bytes) -> VerifyReport:
    """Verify structure and checksums of ``blob`` without decompressing.

    Checks, in order: container framing parses; the v2 whole-stream CRC
    matches; every per-section CRC matches; for ``CHUNKED`` streams the
    chunk table is self-consistent and every per-chunk sub-stream verifies
    in turn; for ``ARCHIVE`` streams every field's sub-stream verifies.
    """
    report = VerifyReport(nbytes=len(blob))
    problems: list[str] = []
    notes: list[str] = []

    try:
        box = Container.from_bytes(blob, verify_checksums=False)
    except StreamError as exc:
        report.problems = (f"structure: {type(exc).__name__}: {exc}",)
        return report
    report.codec = box.codec
    report.version = box.version
    report.checksummed = box.checksummed
    report.n_sections = len(box.keys())

    if box.checksummed:
        (stored,) = struct.unpack("<I", blob[-_CRC_BYTES:])
        actual = crc32c(blob[:-_CRC_BYTES])
        if stored != actual:
            problems.append(
                f"stream checksum mismatch: stored {stored:#010x}, "
                f"computed {actual:#010x}"
            )
        for key in box.keys():
            if not box.check_section(key):
                problems.append(f"section {key!r}: payload checksum mismatch")
    else:
        notes.append("v1 stream: carries no checksums, integrity not verifiable")

    if box.codec == "CHUNKED":
        report.n_chunks = _verify_chunk_table(box, blob, problems)
    elif box.codec == "ARCHIVE":
        for key in box.keys():
            if key.startswith("field:"):
                sub = verify_stream(box.get(key))
                problems.extend(f"field {key[6:]!r}: {p}" for p in sub.problems)

    report.problems = tuple(problems)
    report.notes = tuple(notes)
    return report
