"""Stream verification and repair: ``verify_stream`` / ``repair_stream``.

``verify_stream`` answers "are these bytes trustworthy?" cheaply:
structure, the v2 stream CRC, every per-section CRC, CHUNKED chunk-table
consistency (including v3 parity geometry), and a recursive pass over
the per-chunk / per-field sub-streams -- all without running any decoder.
This is what ``repro-compress verify`` runs, and what an HPC restart
path would run on every rank file before committing to a load.

``repair_stream`` goes one step further on parity-bearing (v3) CHUNKED
streams: chunks whose bytes fail their own checksums -- or are missing
outright after a truncation -- are rebuilt byte-exactly from the
surviving members of their Reed-Solomon parity group, and a fully
re-serialized stream plus a per-chunk :class:`RepairReport` comes back.

Verification never raises on bad bytes: every defect becomes an entry in
the returned :class:`VerifyReport`.  Repair raises :class:`StreamError`
only when the stream's geometry (codec, chunk table, parity table) is
itself unreadable -- without it there is nothing to repair against.
"""

from __future__ import annotations

import math
import struct
import time
from dataclasses import dataclass, field
from itertools import combinations

import numpy as np

from repro.encoding.container import (
    ChecksumError,
    Container,
    ContainerError,
    StreamError,
)
from repro.encoding.crc import crc32c
from repro.encoding.rs import (
    MAX_GROUP_BLOCKS,
    InsufficientParityError,
    decode_blocks,
    encode_parity,
)
from repro.observe.events import emit as emit_event
from repro.observe.metrics import metrics
from repro.observe.tracer import span

__all__ = [
    "ChunkRepair",
    "RepairReport",
    "VerifyReport",
    "repair_stream",
    "verify_stream",
]

_CRC_BYTES = 4

#: CHUNKED metadata sections whose per-section CRCs must hold before any
#: recovery or repair can be attempted.
_CHUNKED_META = ("dtype", "shape", "inner_codec", "n_chunks", "offs", "lens", "elems")

#: v3 parity metadata (the ``parity`` payload itself may be damaged --
#: rebuilt chunks are validated by their own stream CRCs instead).
_PARITY_META = ("parity_k", "group_size", "parity_lens")


@dataclass
class VerifyReport:
    """Everything ``verify_stream`` learned about one byte stream.

    ``problems`` is the authoritative verdict: empty means every check
    passed.  ``checksummed`` is False for v1 streams, whose integrity
    cannot be vouched for -- that is reported as a note, not a problem.
    """

    nbytes: int
    codec: str | None = None
    version: int | None = None
    checksummed: bool = False
    n_sections: int = 0
    n_chunks: int | None = None
    problems: tuple[str, ...] = ()
    notes: tuple[str, ...] = field(default=())

    @property
    def ok(self) -> bool:
        return not self.problems

    def summary(self) -> str:
        head = (
            f"{self.codec or '?'} v{self.version or '?'} stream, "
            f"{self.nbytes} bytes, {self.n_sections} sections"
        )
        if self.n_chunks is not None:
            head += f", {self.n_chunks} chunks"
        if self.ok:
            verdict = "OK" if self.checksummed else "OK (v1: no checksums to verify)"
            return f"{head}: {verdict}"
        return f"{head}: {len(self.problems)} problem(s)\n" + "\n".join(
            f"  - {p}" for p in self.problems
        )


def _verify_chunk_table(box: Container, blob: bytes, problems: list[str]) -> int | None:
    """Check CHUNKED geometry + every per-chunk sub-stream. Returns n_chunks."""
    try:
        n = box.get_u64("n_chunks")
        offs = box.get_array("offs").astype(np.int64)
        lens = box.get_array("lens").astype(np.int64)
        elems = box.get_array("elems").astype(np.int64)
        shape = box.get_shape("shape")
        payload = box.get("payload")
    except StreamError as exc:
        problems.append(f"chunk table unreadable: {exc}")
        return None
    if not (offs.size == lens.size == elems.size == n):
        problems.append(
            f"chunk table size mismatch: n_chunks={n} but "
            f"{offs.size}/{lens.size}/{elems.size} table entries"
        )
        return int(n)
    if n:
        if (lens < 0).any() or (
            offs != np.concatenate([[0], np.cumsum(lens)[:-1]])
        ).any():
            problems.append("chunk offsets are not the cumulative sum of lengths")
        elif int(offs[-1] + lens[-1]) != len(payload):
            problems.append(
                f"payload holds {len(payload)} bytes but the chunk table "
                f"spans {int(offs[-1] + lens[-1])}"
            )
    if (elems <= 0).any() or int(elems.sum()) != math.prod(shape):
        problems.append(
            f"chunk element counts sum to {int(elems.sum())}, "
            f"shape needs {math.prod(shape)}"
        )
    before = len(problems)
    for i, (o, ln) in enumerate(zip(offs, lens)):
        if o + ln > len(payload):
            problems.append(f"chunk {i}: bytes missing from payload")
            continue
        sub = verify_stream(payload[o : o + ln])
        problems.extend(f"chunk {i}: {p}" for p in sub.problems)
    if "parity_k" in box:
        _verify_parity(
            box, int(n), lens, payload, problems, chunks_ok=len(problems) == before
        )
    return int(n)


def _verify_parity(
    box: Container,
    n: int,
    lens: np.ndarray,
    payload: bytes,
    problems: list[str],
    chunks_ok: bool,
) -> None:
    """Check v3 parity geometry; recompute parity when the chunks are intact."""
    try:
        k = box.get_u64("parity_k")
        m = box.get_u64("group_size")
        plens = box.get_array("parity_lens").astype(np.int64)
        parity = box.get("parity")
    except StreamError as exc:
        problems.append(f"parity sections unreadable: {exc}")
        return
    if k < 1 or m < 1 or m + k > MAX_GROUP_BLOCKS:
        problems.append(f"impossible parity geometry: k={k} per group of {m}")
        return
    n_groups = math.ceil(n / m) if n else 0
    if plens.size != n_groups or (plens < 0).any():
        problems.append(
            f"parity_lens holds {plens.size} group(s), chunk table implies {n_groups}"
        )
        return
    for g in range(n_groups):
        want = int(lens[g * m : (g + 1) * m].max(initial=0))
        if int(plens[g]) != want:
            problems.append(
                f"parity group {g}: block length {int(plens[g])}, "
                f"longest member chunk is {want}"
            )
    expect = int(k * plens.sum())
    if len(parity) != expect:
        problems.append(
            f"parity section holds {len(parity)} bytes, geometry needs {expect}"
        )
    elif chunks_ok and not any(p.startswith("parity") for p in problems):
        # Chunks and geometry are intact: the parity bytes must equal a
        # deterministic re-encode (this is the same check repair relies on).
        offset = 0
        for g in range(n_groups):
            blobs = [
                bytes(payload[int(o) : int(o) + int(ln)])
                for o, ln in zip(
                    np.concatenate([[0], np.cumsum(lens)])[g * m : (g + 1) * m],
                    lens[g * m : (g + 1) * m],
                )
            ]
            size = int(k * plens[g])
            if encode_parity(blobs, int(k)) != _split_blocks(
                parity[offset : offset + size], int(k)
            ):
                problems.append(f"parity group {g}: bytes do not match recomputed parity")
            offset += size


def _split_blocks(raw: bytes, k: int) -> list[bytes]:
    """Cut one group's parity bytes into its ``k`` equal-length blocks."""
    if k <= 0 or len(raw) % k:
        return []
    size = len(raw) // k
    return [raw[j * size : (j + 1) * size] for j in range(k)]


def verify_stream(blob: bytes) -> VerifyReport:
    """Verify structure and checksums of ``blob`` without decompressing.

    Checks, in order: container framing parses; the v2 whole-stream CRC
    matches; every per-section CRC matches; for ``CHUNKED`` streams the
    chunk table is self-consistent and every per-chunk sub-stream verifies
    in turn; for ``ARCHIVE`` streams every field's sub-stream verifies.
    """
    report = VerifyReport(nbytes=len(blob))
    problems: list[str] = []
    notes: list[str] = []

    try:
        box = Container.from_bytes(blob, verify_checksums=False)
    except StreamError as exc:
        report.problems = (f"structure: {type(exc).__name__}: {exc}",)
        return report
    report.codec = box.codec
    report.version = box.version
    report.checksummed = box.checksummed
    report.n_sections = len(box.keys())

    if box.checksummed:
        (stored,) = struct.unpack("<I", blob[-_CRC_BYTES:])
        actual = crc32c(blob[:-_CRC_BYTES])
        if stored != actual:
            problems.append(
                f"stream checksum mismatch: stored {stored:#010x}, "
                f"computed {actual:#010x}"
            )
        for key in box.keys():
            if not box.check_section(key):
                problems.append(f"section {key!r}: payload checksum mismatch")
    else:
        notes.append("v1 stream: carries no checksums, integrity not verifiable")

    if box.codec == "CHUNKED":
        report.n_chunks = _verify_chunk_table(box, blob, problems)
        if "chunk_codecs" in box and box.check_section("chunk_codecs"):
            codecs = [c for c in box.get_str("chunk_codecs").split(";") if c]
            primary = (
                box.get_str("ladder").split(">")
                if "ladder" in box and box.check_section("ladder")
                else codecs
            )[0] if codecs else None
            degraded = sum(1 for c in codecs if c != primary)
            if degraded:
                notes.append(
                    f"{degraded} of {len(codecs)} chunk(s) were compressed by "
                    f"a fallback rung of the codec ladder (primary {primary}); "
                    f"bytes are intact, but see 'repro-compress explain'"
                )
        if "parity_k" in box and box.check_section("parity_k"):
            notes.append(
                f"carries Reed-Solomon parity: k={box.get_u64('parity_k')} "
                f"per group of {box.get_u64('group_size')}"
            )
    elif box.codec == "ARCHIVE":
        for key in box.keys():
            if key.startswith("field:"):
                sub = verify_stream(box.get(key))
                problems.extend(f"field {key[6:]!r}: {p}" for p in sub.problems)

    report.problems = tuple(problems)
    report.notes = tuple(notes)
    return report


# -- repair ------------------------------------------------------------------


@dataclass(frozen=True)
class ChunkRepair:
    """Outcome for one damaged chunk of a repaired stream.

    ``outcome`` is ``"repaired"`` (rebuilt byte-exactly from parity) or
    ``"lost"`` (more damage in the group than the parity covers, or the
    rebuilt bytes failed their own checksum); ``error`` is what was wrong
    with the original chunk bytes.
    """

    index: int
    outcome: str
    error: str

    def to_dict(self) -> dict:
        return {"index": self.index, "outcome": self.outcome, "error": self.error}


@dataclass
class RepairReport:
    """Everything :func:`repair_stream` did to one byte stream.

    ``chunks`` lists only the *damaged* chunks; intact ones do not
    appear.  ``ok`` means every damaged chunk was rebuilt -- the returned
    stream is then byte-for-byte the original (parity damage included,
    since parity is deterministically re-encoded from the final chunks).
    """

    nbytes: int
    n_chunks: int
    parity_k: int
    group_size: int
    chunks: tuple[ChunkRepair, ...] = ()
    notes: tuple[str, ...] = field(default=())

    @property
    def repaired(self) -> tuple[int, ...]:
        return tuple(c.index for c in self.chunks if c.outcome == "repaired")

    @property
    def lost(self) -> tuple[int, ...]:
        return tuple(c.index for c in self.chunks if c.outcome == "lost")

    @property
    def n_damaged(self) -> int:
        return len(self.chunks)

    @property
    def n_repaired(self) -> int:
        return len(self.repaired)

    @property
    def n_lost(self) -> int:
        return len(self.lost)

    @property
    def ok(self) -> bool:
        return not self.lost

    def to_dict(self) -> dict:
        return {
            "nbytes": self.nbytes,
            "n_chunks": self.n_chunks,
            "parity_k": self.parity_k,
            "group_size": self.group_size,
            "n_damaged": self.n_damaged,
            "n_repaired": self.n_repaired,
            "n_lost": self.n_lost,
            "ok": self.ok,
            "chunks": [c.to_dict() for c in self.chunks],
            "notes": list(self.notes),
        }

    def summary(self) -> str:
        head = (
            f"{self.n_chunks} chunks, k={self.parity_k} parity "
            f"per group of {self.group_size}"
        )
        if not self.chunks:
            return f"{head}: no damaged chunks"
        verdict = f"rebuilt {self.n_repaired}/{self.n_damaged} damaged chunk(s)"
        if self.lost:
            verdict += " -- lost " + ", ".join(
                f"chunk {c.index} ({c.error})" for c in self.chunks if c.outcome == "lost"
            )
        return f"{head}: {verdict}"


def _chunk_intact(chunk: bytes) -> bool:
    """True when ``chunk`` parses as a complete, checksum-clean stream."""
    try:
        Container.from_bytes(chunk)
    except StreamError:
        return False
    return True


def _rebuild_group(
    group: list[bytes | None],
    parity: list[bytes | None],
    glens: list[int],
) -> dict[int, bytes] | None:
    """Rebuild a group's missing blocks, or None when the parity cannot.

    Tries every combination of the surviving parity blocks and accepts
    the first whose rebuilt chunks all pass their own stream checksums --
    so a silently-corrupted parity block (whole-section CRC can't say
    which block) costs attempts, never correctness.
    """
    missing = [i for i, b in enumerate(group) if b is None]
    have = [j for j, p in enumerate(parity) if p is not None]
    if len(missing) > len(have):
        return None
    for sel in combinations(have, len(missing)):
        chosen = [p if j in sel else None for j, p in enumerate(parity)]
        try:
            rebuilt = decode_blocks(group, chosen, glens)
        except (InsufficientParityError, ValueError):
            continue
        out = {i: rebuilt[i] for i in missing}
        if all(_chunk_intact(b) for b in out.values()):
            return out
    return None


def repair_stream(blob: bytes) -> tuple[bytes, RepairReport]:
    """Rebuild the damaged chunks of a parity-bearing CHUNKED stream.

    Returns ``(repaired_bytes, report)``.  When ``report.ok`` the
    repaired bytes are byte-for-byte the originally written stream
    (verified by re-serializing with fresh CRCs -- identical input bytes
    give an identical stream CRC); chunks beyond the parity's reach keep
    their damaged/zero-padded bytes so partial recovery can still skip
    just them.  Raises :class:`StreamError` when the stream is not a
    parity-bearing CHUNKED record or its geometry is unreadable.
    """
    with span("repair-stream", nbytes=len(blob)):
        return _repair_stream(blob)


def _repair_stream(blob: bytes) -> tuple[bytes, RepairReport]:
    t0 = time.perf_counter()
    box = Container.from_bytes(blob, verify_checksums=False, partial=True)
    if box.codec != "CHUNKED":
        raise ContainerError(
            f"stream was produced by {box.codec!r}; only CHUNKED streams carry parity"
        )
    for key in _CHUNKED_META + _PARITY_META:
        if key in box and not box.check_section(key):
            raise ChecksumError(f"CHUNKED metadata section {key!r} is corrupt")
    if "parity_k" not in box:
        raise ContainerError("stream carries no parity sections (not a v3 record)")
    from repro.core.chunked import ChunkedCompressor

    shape = box.get_shape("shape")
    offs, lens, elems = ChunkedCompressor._read_chunk_table(box, shape)
    n = int(box.get_u64("n_chunks"))
    k = int(box.get_u64("parity_k"))
    m = int(box.get_u64("group_size"))
    if k < 1 or m < 1 or m + k > MAX_GROUP_BLOCKS:
        raise ContainerError(f"impossible parity geometry: k={k} per group of {m}")
    plens = box.get_array("parity_lens").astype(np.int64)
    n_groups = math.ceil(n / m) if n else 0
    if plens.size != n_groups or (plens < 0).any():
        raise ContainerError(
            f"parity_lens holds {plens.size} group(s), chunk table implies {n_groups}"
        )
    payload = box.get("payload") if "payload" in box else b""
    pbytes = box.get("parity") if "parity" in box else b""

    # Classify every chunk by its own bytes: present + checksum-clean, or
    # damaged (corrupt or truncated).  ``raw`` keeps the damaged bytes,
    # zero-padded to table length, for chunks nothing can rebuild.
    chunks: list[bytes | None] = []
    raw: list[bytes] = []
    damage: dict[int, str] = {}
    for i, (o, ln) in enumerate(zip(offs.tolist(), lens.tolist())):
        piece = bytes(payload[o : o + ln])
        raw.append(piece.ljust(ln, b"\0"))
        if len(piece) < ln:
            damage[i] = "chunk bytes missing (truncated payload)"
            chunks.append(None)
        elif _chunk_intact(piece):
            chunks.append(piece)
        else:
            damage[i] = "chunk stream failed verification"
            chunks.append(None)

    # Slice the parity payload into per-group blocks; anything not fully
    # present counts as one more erasure.
    group_parity: list[list[bytes | None]] = []
    base = 0
    for g in range(n_groups):
        size = int(plens[g])
        blocks: list[bytes | None] = []
        for _ in range(k):
            blocks.append(bytes(pbytes[base : base + size]) if base + size <= len(pbytes) else None)
            base += size
        group_parity.append(blocks)

    repairs: list[ChunkRepair] = []
    for g in range(n_groups):
        idx = list(range(g * m, min((g + 1) * m, n)))
        missing = [i for i in idx if chunks[i] is None]
        if not missing:
            continue
        rebuilt = _rebuild_group(
            [chunks[i] for i in idx],
            group_parity[g],
            [int(lens[i]) for i in idx],
        )
        for i in missing:
            if rebuilt is not None:
                chunks[i] = rebuilt[i - g * m]
                repairs.append(ChunkRepair(i, "repaired", damage[i]))
                emit_event("chunk-repair", index=i, group=g, error=damage[i])
            else:
                repairs.append(ChunkRepair(i, "lost", damage[i]))

    report = RepairReport(
        nbytes=len(blob),
        n_chunks=n,
        parity_k=k,
        group_size=m,
        chunks=tuple(repairs),
    )

    # Reassemble in the canonical v3 section order, copying metadata
    # section bytes verbatim.  With every chunk recovered the parity is
    # re-encoded (deterministic, so it equals -- and if damaged, heals --
    # the original); with losses the original parity bytes are kept so a
    # later, better-informed repair loses nothing.
    final = [c if c is not None else raw[i] for i, c in enumerate(chunks)]
    keys = [key for key in box.keys() if key not in ("parity", "payload")]
    out = Container(box.codec)
    for key in keys:
        out.put(key, box.get(key))
    if report.ok and n:
        parity_out = b"".join(
            b"".join(encode_parity(final[g * m : (g + 1) * m], k))
            for g in range(n_groups)
        )
    else:
        parity_out = bytes(pbytes).ljust(int(k * plens.sum()), b"\0")
    out.put("parity", parity_out)
    out.put("payload", b"".join(final))

    reg = metrics()
    reg.counter("parity.decode_s").inc(time.perf_counter() - t0)
    reg.counter("repair.streams").inc()
    reg.counter("repair.chunks_repaired").inc(report.n_repaired)
    reg.counter("repair.chunks_lost").inc(report.n_lost)
    emit_event(
        "repair-stream",
        nbytes=len(blob),
        n_chunks=n,
        n_damaged=report.n_damaged,
        n_repaired=report.n_repaired,
        n_lost=report.n_lost,
        ok=report.ok,
    )
    return out.to_bytes(version=3), report
