"""Dependency-free visualization for the slice figures (Fig. 4/5)."""

from repro.viz.heatmap import ascii_heatmap, save_pgm, to_gray

__all__ = ["ascii_heatmap", "save_pgm", "to_gray"]
