"""Grayscale renderers for 2-D slices (no plotting dependencies).

The paper's Figures 4 and 5 are image comparisons; we regenerate them as
PGM files (viewable anywhere, diffable) plus coarse ASCII previews for
terminal output.  Quantitative companions (per-value-range error stats,
per-cell skew angles) come from :mod:`repro.metrics`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["to_gray", "save_pgm", "ascii_heatmap"]

_ASCII_RAMP = " .:-=+*#%@"


def to_gray(
    slice2d: np.ndarray,
    vmin: float | None = None,
    vmax: float | None = None,
) -> np.ndarray:
    """Map a 2-D field to uint8 grayscale, clipping to [vmin, vmax]."""
    a = np.asarray(slice2d, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError(f"expected a 2-D slice, got shape {a.shape}")
    lo = float(a.min()) if vmin is None else float(vmin)
    hi = float(a.max()) if vmax is None else float(vmax)
    if hi <= lo:
        return np.zeros(a.shape, dtype=np.uint8)
    return (np.clip((a - lo) / (hi - lo), 0.0, 1.0) * 255.0).astype(np.uint8)


def save_pgm(path: str, gray: np.ndarray) -> None:
    """Write a binary PGM (P5) image."""
    gray = np.asarray(gray, dtype=np.uint8)
    if gray.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {gray.shape}")
    h, w = gray.shape
    with open(path, "wb") as fh:
        fh.write(f"P5\n{w} {h}\n255\n".encode("ascii"))
        fh.write(gray.tobytes())


def ascii_heatmap(
    slice2d: np.ndarray,
    width: int = 64,
    vmin: float | None = None,
    vmax: float | None = None,
) -> str:
    """Coarse ASCII rendering (terminal preview of a figure panel)."""
    gray = to_gray(slice2d, vmin, vmax)
    h, w = gray.shape
    step_w = max(1, w // width)
    step_h = max(1, int(step_w * 2))  # characters are ~2x taller than wide
    coarse = gray[: h - h % step_h, : w - w % step_w]
    coarse = coarse.reshape(coarse.shape[0] // step_h, step_h, -1, step_w).mean(axis=(1, 3))
    idx = (coarse / 256.0 * len(_ASCII_RAMP)).astype(int).clip(0, len(_ASCII_RAMP) - 1)
    return "\n".join("".join(_ASCII_RAMP[i] for i in row) for row in idx)
