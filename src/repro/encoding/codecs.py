"""Small integer/byte codecs shared across compressors.

* zigzag mapping between signed and unsigned integers,
* LEB128-style varints for container metadata,
* sign-bitmap packing (Algorithm 1 of the paper stores the signs of the
  input separately and compresses them with DEFLATE when the data is not
  single-signed),
* thin wrappers over :mod:`zlib` (the paper's "gzip stage" -- gzip is the
  DEFLATE algorithm plus a file header, which we do not need).
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = [
    "zigzag_encode",
    "zigzag_decode",
    "write_varint",
    "read_varint",
    "encode_sign_bitmap",
    "decode_sign_bitmap",
    "deflate",
    "inflate",
]


def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map int64 -> uint64 with small magnitudes staying small.

    ``0, -1, 1, -2, 2, ...`` map to ``0, 1, 2, 3, 4, ...``.
    """
    v = np.asarray(values, dtype=np.int64)
    return ((v << 1) ^ (v >> 63)).view(np.uint64)


def zigzag_decode(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_encode`."""
    u = np.asarray(values, dtype=np.uint64)
    return ((u >> np.uint64(1)).view(np.int64)) ^ -(u & np.uint64(1)).view(np.int64)


def write_varint(value: int) -> bytes:
    """LEB128 encoding of a non-negative integer."""
    if value < 0:
        raise ValueError(f"varint requires a non-negative value, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def read_varint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a LEB128 varint; returns ``(value, next_offset)``."""
    value = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise ValueError("truncated varint")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift > 70:
            raise ValueError("varint too long")


def encode_sign_bitmap(data: np.ndarray) -> tuple[bool, bytes]:
    """Pack the signs of ``data`` per Algorithm 1 of the paper.

    Returns ``(all_nonnegative, payload)``.  When every value is
    non-negative the payload is empty (the paper's ``P`` flag); otherwise the
    payload is the DEFLATE-compressed bit map with one bit per element
    (1 = negative).
    """
    negatives = np.signbit(np.asarray(data)).ravel()
    if not negatives.any():
        return True, b""
    packed = np.packbits(negatives.astype(np.uint8)).tobytes()
    return False, deflate(packed)


def decode_sign_bitmap(all_nonnegative: bool, payload: bytes, count: int) -> np.ndarray:
    """Inverse of :func:`encode_sign_bitmap`; returns a boolean array."""
    if all_nonnegative:
        return np.zeros(count, dtype=bool)
    packed = np.frombuffer(inflate(payload), dtype=np.uint8)
    return np.unpackbits(packed, count=count).astype(bool)


def deflate(data: bytes, level: int = 6) -> bytes:
    """DEFLATE-compress ``data`` (the paper's optional gzip stage)."""
    return zlib.compress(data, level)


def inflate(data: bytes) -> bytes:
    return zlib.decompress(data)
