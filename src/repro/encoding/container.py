"""Self-describing byte container for compressed streams.

Every compressor in the library serializes to a :class:`Container` so the
compression ratios reported by the experiment harness are measured on real
byte streams, not on in-memory object sizes.

Layout::

    magic  b"RPRC"                 4 bytes
    version                        1 byte
    codec name length + utf-8      varint + bytes
    n_sections                     varint
    repeat n_sections times:
        key length + utf-8 key     varint + bytes
        payload length + payload   varint + bytes

Sections preserve insertion order.  Metadata convenience accessors store
small scalars as UTF-8/struct-packed sections.
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from collections.abc import Iterator

import numpy as np

from repro.encoding.codecs import read_varint, write_varint

__all__ = ["Container", "ContainerError"]

_MAGIC = b"RPRC"
_VERSION = 1

# dtype tokens are fixed so streams are portable across numpy versions.
_DTYPE_TOKENS = {
    "float32": b"f4",
    "float64": b"f8",
    "int32": b"i4",
    "int64": b"i8",
    "uint8": b"u1",
    "uint16": b"u2",
    "uint32": b"u4",
    "uint64": b"u8",
}
_TOKEN_DTYPES = {v: np.dtype(k) for k, v in _DTYPE_TOKENS.items()}


class ContainerError(ValueError):
    """Raised for malformed container bytes."""


class Container:
    """Ordered mapping of named byte sections with typed helpers."""

    def __init__(self, codec: str) -> None:
        if not codec:
            raise ValueError("codec name must be non-empty")
        self.codec = codec
        self._sections: OrderedDict[str, bytes] = OrderedDict()

    # -- raw sections ------------------------------------------------------

    def put(self, key: str, payload: bytes) -> None:
        if key in self._sections:
            raise ContainerError(f"duplicate section {key!r}")
        self._sections[key] = bytes(payload)

    def get(self, key: str) -> bytes:
        try:
            return self._sections[key]
        except KeyError:
            raise ContainerError(f"missing section {key!r} in {self.codec} stream") from None

    def __contains__(self, key: str) -> bool:
        return key in self._sections

    def __iter__(self) -> Iterator[str]:
        return iter(self._sections)

    def keys(self):
        return self._sections.keys()

    # -- typed helpers -----------------------------------------------------

    def put_u64(self, key: str, value: int) -> None:
        self.put(key, struct.pack("<Q", value))

    def get_u64(self, key: str) -> int:
        return struct.unpack("<Q", self.get(key))[0]

    def put_i64(self, key: str, value: int) -> None:
        self.put(key, struct.pack("<q", value))

    def get_i64(self, key: str) -> int:
        return struct.unpack("<q", self.get(key))[0]

    def put_f64(self, key: str, value: float) -> None:
        self.put(key, struct.pack("<d", value))

    def get_f64(self, key: str) -> float:
        return struct.unpack("<d", self.get(key))[0]

    def put_str(self, key: str, value: str) -> None:
        self.put(key, value.encode("utf-8"))

    def get_str(self, key: str) -> str:
        return self.get(key).decode("utf-8")

    def put_shape(self, key: str, shape: tuple[int, ...]) -> None:
        self.put(key, b"".join(write_varint(d) for d in (len(shape), *shape)))

    def get_shape(self, key: str) -> tuple[int, ...]:
        data = self.get(key)
        ndim, pos = read_varint(data)
        dims = []
        for _ in range(ndim):
            d, pos = read_varint(data, pos)
            dims.append(d)
        return tuple(dims)

    def put_dtype(self, key: str, dtype: np.dtype) -> None:
        name = np.dtype(dtype).name
        if name not in _DTYPE_TOKENS:
            raise ContainerError(f"unsupported dtype {name}")
        self.put(key, _DTYPE_TOKENS[name])

    def get_dtype(self, key: str) -> np.dtype:
        token = self.get(key)
        if token not in _TOKEN_DTYPES:
            raise ContainerError(f"unknown dtype token {token!r}")
        return _TOKEN_DTYPES[token]

    def put_array(self, key: str, arr: np.ndarray) -> None:
        """Store a 1-D array as dtype token + raw little-endian bytes."""
        arr = np.ascontiguousarray(arr)
        name = arr.dtype.name
        if name not in _DTYPE_TOKENS:
            raise ContainerError(f"unsupported dtype {name}")
        le = arr.astype(arr.dtype.newbyteorder("<"), copy=False)
        self.put(key, _DTYPE_TOKENS[name] + le.tobytes())

    def get_array(self, key: str) -> np.ndarray:
        data = self.get(key)
        dtype = _TOKEN_DTYPES.get(data[:2])
        if dtype is None:
            raise ContainerError(f"unknown dtype token {data[:2]!r}")
        return np.frombuffer(data[2:], dtype=dtype.newbyteorder("<")).astype(dtype)

    # -- serialization -----------------------------------------------------

    def to_bytes(self) -> bytes:
        parts = [_MAGIC, bytes([_VERSION])]
        codec = self.codec.encode("utf-8")
        parts.append(write_varint(len(codec)))
        parts.append(codec)
        parts.append(write_varint(len(self._sections)))
        for key, payload in self._sections.items():
            k = key.encode("utf-8")
            parts.append(write_varint(len(k)))
            parts.append(k)
            parts.append(write_varint(len(payload)))
            parts.append(payload)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Container":
        if data[:4] != _MAGIC:
            raise ContainerError("bad magic: not a repro compressed stream")
        if data[4] != _VERSION:
            raise ContainerError(f"unsupported container version {data[4]}")
        pos = 5
        n, pos = read_varint(data, pos)
        codec = data[pos : pos + n].decode("utf-8")
        pos += n
        nsec, pos = read_varint(data, pos)
        out = cls(codec)
        for _ in range(nsec):
            n, pos = read_varint(data, pos)
            key = data[pos : pos + n].decode("utf-8")
            pos += n
            n, pos = read_varint(data, pos)
            if pos + n > len(data):
                raise ContainerError(f"truncated section {key!r}")
            out.put(key, data[pos : pos + n])
            pos += n
        return out

    @property
    def nbytes(self) -> int:
        """Serialized size in bytes."""
        return len(self.to_bytes())
