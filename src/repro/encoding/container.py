"""Self-describing byte container for compressed streams.

Every compressor in the library serializes to a :class:`Container` so the
compression ratios reported by the experiment harness are measured on real
byte streams, not on in-memory object sizes.

Version-2 layout (written by default)::

    magic  b"RPRC"                 4 bytes
    version                        1 byte (0x02)
    codec name length + utf-8      varint + bytes
    n_sections                     varint
    repeat n_sections times:
        key length + utf-8 key     varint + bytes
        payload length + payload   varint + bytes
        payload CRC-32C            4 bytes little-endian
    stream CRC-32C                 4 bytes little-endian (all prior bytes)

Version-1 streams (no checksums, no trailer) still parse; checksum
verification is simply skipped for them.  Sections preserve insertion
order.  Metadata convenience accessors store small scalars as
UTF-8/struct-packed sections.

Parsing raises the :class:`StreamError` hierarchy: :class:`ContainerError`
for malformed structure, :class:`TruncatedStreamError` when the bytes end
early, :class:`ChecksumError` when stored CRCs disagree with the data.
"""

from __future__ import annotations

import struct
import time
from collections import OrderedDict
from collections.abc import Iterator

import numpy as np

from repro.encoding.codecs import read_varint, write_varint
from repro.encoding.crc import crc32c, crc32c_combine
from repro.observe.metrics import metrics as _metrics

__all__ = [
    "Container",
    "ContainerError",
    "ChecksumError",
    "StreamError",
    "TruncatedStreamError",
    "peek_codec",
    "section_byte_ranges",
]

_MAGIC = b"RPRC"
_VERSION = 2
#: Version written for parity-bearing records (chunk-level erasure
#: coding, see ``docs/formats.md``).  Same framing as v2 -- the bump is a
#: format signal so pre-parity readers fail loudly instead of silently
#: ignoring the parity sections they cannot honour.
_VERSION_PARITY = 3
#: Version written for safeguard-bearing records (codec ``SAFE``, see
#: ``docs/safeguards.md``).  Same framing as v2/v3 -- the bump signals that
#: honouring the stream's guarantees requires applying the patch sections,
#: so pre-safeguard readers fail loudly rather than dropping them.
_VERSION_SAFEGUARDS = 4
_KNOWN_VERSIONS = (1, 2, 3, 4)
_CRC_BYTES = 4

# dtype tokens are fixed so streams are portable across numpy versions.
_DTYPE_TOKENS = {
    "float32": b"f4",
    "float64": b"f8",
    "int32": b"i4",
    "int64": b"i8",
    "uint8": b"u1",
    "uint16": b"u2",
    "uint32": b"u4",
    "uint64": b"u8",
}
_TOKEN_DTYPES = {v: np.dtype(k) for k, v in _DTYPE_TOKENS.items()}


class StreamError(ValueError):
    """Base class for every defect a compressed stream can exhibit.

    Subclasses ``ValueError`` so pre-hierarchy callers that caught
    ``ValueError`` keep working.
    """


class ContainerError(StreamError):
    """Raised for malformed container bytes."""


class TruncatedStreamError(ContainerError):
    """Raised when the byte stream ends before its structure is complete."""


class ChecksumError(StreamError):
    """Raised when a stored CRC-32C disagrees with the bytes it covers."""


class Container:
    """Ordered mapping of named byte sections with typed helpers."""

    def __init__(self, codec: str) -> None:
        if not codec:
            raise ValueError("codec name must be non-empty")
        self.codec = codec
        self._sections: OrderedDict[str, bytes] = OrderedDict()
        #: Format version this container was parsed from (or will be
        #: written as).  Version 1 streams carry no checksums.
        self.version = _VERSION
        #: CRCs recorded while parsing a v2 stream, for per-section
        #: re-verification (see :meth:`check_section`).
        self._section_crcs: dict[str, int] = {}
        #: Key of the section whose payload was cut short during a
        #: ``partial=True`` parse, if any.
        self.truncated_key: str | None = None

    # -- raw sections ------------------------------------------------------

    def put(self, key: str, payload: bytes) -> None:
        if key in self._sections:
            raise ContainerError(f"duplicate section {key!r}")
        self._sections[key] = bytes(payload)

    def get(self, key: str) -> bytes:
        try:
            return self._sections[key]
        except KeyError:
            raise ContainerError(f"missing section {key!r} in {self.codec} stream") from None

    def __contains__(self, key: str) -> bool:
        return key in self._sections

    def __iter__(self) -> Iterator[str]:
        return iter(self._sections)

    def keys(self):
        return self._sections.keys()

    # -- typed helpers -----------------------------------------------------

    def put_u64(self, key: str, value: int) -> None:
        self.put(key, struct.pack("<Q", value))

    def get_u64(self, key: str) -> int:
        return struct.unpack("<Q", self.get(key))[0]

    def put_i64(self, key: str, value: int) -> None:
        self.put(key, struct.pack("<q", value))

    def get_i64(self, key: str) -> int:
        return struct.unpack("<q", self.get(key))[0]

    def put_f64(self, key: str, value: float) -> None:
        self.put(key, struct.pack("<d", value))

    def get_f64(self, key: str) -> float:
        return struct.unpack("<d", self.get(key))[0]

    def put_str(self, key: str, value: str) -> None:
        self.put(key, value.encode("utf-8"))

    def get_str(self, key: str) -> str:
        return self.get(key).decode("utf-8")

    def put_shape(self, key: str, shape: tuple[int, ...]) -> None:
        self.put(key, b"".join(write_varint(d) for d in (len(shape), *shape)))

    def get_shape(self, key: str) -> tuple[int, ...]:
        data = self.get(key)
        ndim, pos = read_varint(data)
        dims = []
        for _ in range(ndim):
            d, pos = read_varint(data, pos)
            dims.append(d)
        return tuple(dims)

    def put_dtype(self, key: str, dtype: np.dtype) -> None:
        name = np.dtype(dtype).name
        if name not in _DTYPE_TOKENS:
            raise ContainerError(f"unsupported dtype {name}")
        self.put(key, _DTYPE_TOKENS[name])

    def get_dtype(self, key: str) -> np.dtype:
        token = self.get(key)
        if token not in _TOKEN_DTYPES:
            raise ContainerError(f"unknown dtype token {token!r}")
        return _TOKEN_DTYPES[token]

    def put_array(self, key: str, arr: np.ndarray) -> None:
        """Store a 1-D array as dtype token + raw little-endian bytes."""
        arr = np.ascontiguousarray(arr)
        name = arr.dtype.name
        if name not in _DTYPE_TOKENS:
            raise ContainerError(f"unsupported dtype {name}")
        le = arr.astype(arr.dtype.newbyteorder("<"), copy=False)
        self.put(key, _DTYPE_TOKENS[name] + le.tobytes())

    def get_array(self, key: str) -> np.ndarray:
        data = self.get(key)
        dtype = _TOKEN_DTYPES.get(data[:2])
        if dtype is None:
            raise ContainerError(f"unknown dtype token {data[:2]!r}")
        if (len(data) - 2) % dtype.itemsize:
            raise ContainerError(f"section {key!r} is not a whole number of {dtype.name}s")
        return np.frombuffer(data[2:], dtype=dtype.newbyteorder("<")).astype(dtype)

    # -- checksums ---------------------------------------------------------

    @property
    def checksummed(self) -> bool:
        """True when this container carries (or will be written with) CRCs."""
        return self.version >= 2

    def check_section(self, key: str) -> bool:
        """Re-verify one section against the CRC recorded at parse time.

        Returns True for sections of v1 streams (no checksum to check) and
        for sections added locally after parsing.  Used by partial-recovery
        paths to localize damage without trusting the whole-stream CRC.
        """
        if key == self.truncated_key:
            return False
        recorded = self._section_crcs.get(key)
        if recorded is None:
            return True
        return crc32c(self.get(key)) == recorded

    # -- serialization -----------------------------------------------------

    def to_bytes(self, checksums: bool = True, version: int | None = None) -> bytes:
        """Serialize; ``checksums=False`` emits the legacy v1 framing.

        ``version`` overrides the version byte (3 marks parity-bearing
        records; same checksummed framing as v2).  v1 cannot be combined
        with checksums and vice versa.
        """
        t0 = time.perf_counter()
        if version is None:
            version = _VERSION if checksums else 1
        if version not in _KNOWN_VERSIONS:
            raise ContainerError(f"unsupported container version {version}")
        if (version >= 2) != checksums:
            raise ContainerError(
                f"container version {version} requires checksums={version >= 2}"
            )
        parts = [_MAGIC, bytes([version])]
        codec = self.codec.encode("utf-8")
        parts.append(write_varint(len(codec)))
        parts.append(codec)
        parts.append(write_varint(len(self._sections)))
        if checksums:
            # The stream CRC is assembled incrementally: framing bytes are
            # hashed as they are emitted and each payload's own CRC (which
            # the v2 format stores anyway) is folded in with
            # crc32c_combine, so payload bytes are read once, not twice.
            stream_crc = crc32c(b"".join(parts))
            for key, payload in self._sections.items():
                k = key.encode("utf-8")
                head = b"".join(
                    (write_varint(len(k)), k, write_varint(len(payload)))
                )
                sec_crc = crc32c(payload)
                tail = struct.pack("<I", sec_crc)
                parts.extend((head, payload, tail))
                stream_crc = crc32c_combine(
                    crc32c(head, stream_crc), sec_crc, len(payload)
                )
                stream_crc = crc32c(tail, stream_crc)
            parts.append(struct.pack("<I", stream_crc))
            blob = b"".join(parts)
        else:
            for key, payload in self._sections.items():
                k = key.encode("utf-8")
                parts.append(write_varint(len(k)))
                parts.append(k)
                parts.append(write_varint(len(payload)))
                parts.append(payload)
            blob = b"".join(parts)
        reg = _metrics()
        reg.counter("container.encode_s").inc(time.perf_counter() - t0)
        reg.counter("container.encode_bytes").inc(len(blob))
        return blob

    @classmethod
    def from_bytes(
        cls,
        data: bytes,
        verify_checksums: bool = True,
        partial: bool = False,
    ) -> "Container":
        """Parse container bytes.

        ``verify_checksums`` (default on) checks the whole-stream CRC of v2
        streams before anything else, so any single corrupted bit raises
        :class:`ChecksumError` instead of decoding wrong data; v1 streams
        have no checksums and skip the check.  ``partial=True`` is the
        damage-tolerant mode used for recovery: checksums are not enforced,
        parsing keeps whatever sections (or section prefix) the bytes still
        contain, and the cut section is flagged in ``truncated_key``.
        """
        if len(data) < 5:
            if data[: len(data)] == _MAGIC[: len(data)]:
                raise TruncatedStreamError("stream shorter than the 5-byte header")
            raise ContainerError("bad magic: not a repro compressed stream")
        if data[:4] != _MAGIC:
            raise ContainerError("bad magic: not a repro compressed stream")
        version = data[4]
        if version not in _KNOWN_VERSIONS:
            raise ContainerError(f"unsupported container version {version}")
        if version >= 2 and verify_checksums and not partial:
            if len(data) < 5 + _CRC_BYTES:
                raise TruncatedStreamError("v2 stream shorter than its CRC trailer")
            t0 = time.perf_counter()
            (stored,) = struct.unpack("<I", data[-_CRC_BYTES:])
            actual = crc32c(data[:-_CRC_BYTES])
            reg = _metrics()
            reg.counter("crc.verify_s").inc(time.perf_counter() - t0)
            reg.counter("crc.bytes_verified").inc(len(data))
            reg.counter("crc.streams_verified").inc()
            if stored != actual:
                reg.counter("crc.failures").inc()
                from repro.observe.events import emit as _emit_event

                _emit_event(
                    "crc-failure",
                    stored=f"{stored:#010x}",
                    computed=f"{actual:#010x}",
                    nbytes=len(data),
                )
                raise ChecksumError(
                    f"stream checksum mismatch (corrupted or truncated bytes): "
                    f"stored {stored:#010x}, computed {actual:#010x}"
                )
        # In partial mode the cut can fall anywhere, so no byte is assumed
        # to be the trailer; complete v2 streams end in a 4-byte stream CRC.
        body_end = len(data) - _CRC_BYTES if version >= 2 and not partial else len(data)
        t0 = time.perf_counter()
        box = cls._parse_body(data, version, body_end, partial)
        reg = _metrics()
        reg.counter("container.decode_s").inc(time.perf_counter() - t0)
        reg.counter("container.decode_bytes").inc(len(data))
        return box

    @classmethod
    def _parse_body(
        cls, data: bytes, version: int, body_end: int, partial: bool
    ) -> "Container":
        def varint(pos: int) -> tuple[int, int]:
            try:
                return read_varint(data[:body_end], pos)
            except ValueError as exc:
                raise TruncatedStreamError(str(exc)) from None

        def text(raw: bytes, what: str) -> str:
            try:
                return raw.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise ContainerError(f"corrupt {what}: {exc}") from None

        pos = 5
        n, pos = varint(pos)
        if pos + n > body_end:
            raise TruncatedStreamError("truncated codec name")
        codec = text(data[pos : pos + n], "codec name")
        pos += n
        nsec, pos = varint(pos)
        out = cls(codec)
        out.version = version
        try:
            for _ in range(nsec):
                n, pos = varint(pos)
                if pos + n > body_end:
                    raise TruncatedStreamError("truncated section key")
                key = text(data[pos : pos + n], "section key")
                pos += n
                n, pos = varint(pos)
                if pos + n > body_end:
                    if partial and version >= 2:
                        # Mid-write cut: keep the readable payload prefix so
                        # chunk-level recovery can salvage what is intact.
                        out.put(key, data[pos:])
                        out.truncated_key = key
                        return out
                    raise TruncatedStreamError(f"truncated section {key!r}")
                out.put(key, data[pos : pos + n])
                pos += n
                if version >= 2:
                    if pos + _CRC_BYTES > len(data):
                        if partial:
                            out.truncated_key = key
                            return out
                        raise TruncatedStreamError(f"truncated checksum of {key!r}")
                    (out._section_crcs[key],) = struct.unpack(
                        "<I", data[pos : pos + _CRC_BYTES]
                    )
                    pos += _CRC_BYTES
        except TruncatedStreamError:
            if partial:
                return out
            raise
        if not partial and pos != body_end:
            raise ContainerError(
                f"{body_end - pos} trailing bytes after the last section"
            )
        return out

    @property
    def nbytes(self) -> int:
        """Serialized size in bytes."""
        return len(self.to_bytes())


def peek_codec(data: bytes) -> str:
    """Codec name from a container header, without parsing the body.

    Dispatchers use this to route a blob to its compressor; the
    compressor's own parse then does the full (checksummed) read, so
    peeking never skips verification -- it just avoids paying for the
    whole-stream CRC twice.
    """
    if len(data) < 5:
        if data[: len(data)] == _MAGIC[: len(data)]:
            raise TruncatedStreamError("stream shorter than the 5-byte header")
        raise ContainerError("bad magic: not a repro compressed stream")
    if data[:4] != _MAGIC:
        raise ContainerError("bad magic: not a repro compressed stream")
    if data[4] not in _KNOWN_VERSIONS:
        raise ContainerError(f"unsupported container version {data[4]}")
    try:
        n, pos = read_varint(data, 5)
    except ValueError as exc:
        raise TruncatedStreamError(str(exc)) from None
    if pos + n > len(data):
        raise TruncatedStreamError("truncated codec name")
    try:
        return data[pos : pos + n].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ContainerError(f"corrupt codec name: {exc}") from None


def section_byte_ranges(data: bytes) -> dict[str, tuple[int, int]]:
    """Byte range ``[start, stop)`` of every section payload in ``data``.

    Fault injectors use this to aim corruption at a named section of a
    serialized stream; ``repro.integrity`` uses it to localize damage.
    """
    box = Container.from_bytes(data, verify_checksums=False)
    ranges: dict[str, tuple[int, int]] = {}
    pos = 5
    n, pos = read_varint(data, pos)
    pos += n  # codec
    nsec, pos = read_varint(data, pos)
    for _ in range(nsec):
        n, pos = read_varint(data, pos)
        key = data[pos : pos + n].decode("utf-8")
        pos += n
        n, pos = read_varint(data, pos)
        ranges[key] = (pos, pos + n)
        pos += n
        if box.version >= 2:
            pos += _CRC_BYTES
    return ranges
