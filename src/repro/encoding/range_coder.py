"""Adaptive binary-search range coder, chunk-parallel like the Huffman codec.

FPZIP's reference implementation entropy-codes residual classes with an
*adaptive* range coder rather than a static Huffman code; adaptivity wins
when the class distribution drifts across the array.  Arithmetic coding is
inherently sequential per stream, so -- as with
:mod:`repro.encoding.huffman` -- the input is cut into fixed-symbol-count
chunks that are encoded and decoded as independent streams advanced in
lockstep by numpy: every loop iteration processes one symbol of *every*
chunk.

The coder is Subbotin's carry-less range coder (32-bit window, byte-wise
renormalization, underflow clamped by shrinking the range), with a
per-chunk adaptive frequency model over a small alphabet:

* counts start at 1, the coded symbol's count grows by ``_INC``,
* when the total passes ``_LIMIT`` all counts halve (staying >= 1),

so encoder and decoder models evolve identically without side channels.

Intended for small alphabets (residual classes, selector streams); the
model table is ``(nchunks, nsym)`` uint32.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.codecs import deflate, inflate, read_varint, write_varint

__all__ = ["RangeCodec"]

_TOP = np.uint64(1) << np.uint64(24)
_BOT = np.uint64(1) << np.uint64(16)
_MASK32 = np.uint64(0xFFFFFFFF)
_INC = np.uint32(24)
_LIMIT = 1 << 13


class RangeCodec:
    """Adaptive range coding over a small alphabet, chunked for decode speed.

    Parameters
    ----------
    nsym:
        Alphabet size (symbols are ``0..nsym-1``); at most 256.
    chunk_size:
        Symbols per independently decodable chunk.
    """

    def __init__(self, nsym: int, chunk_size: int = 1024) -> None:
        if not 2 <= nsym <= 256:
            raise ValueError(f"alphabet size must be in [2, 256], got {nsym}")
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.nsym = nsym
        self.chunk_size = chunk_size

    # -- encoding ----------------------------------------------------------

    def encode(self, symbols: np.ndarray) -> bytes:
        symbols = np.ascontiguousarray(symbols, dtype=np.int64).ravel()
        n = symbols.size
        header = [write_varint(n), write_varint(self.chunk_size), write_varint(self.nsym)]
        if n == 0:
            return b"".join(header)
        if symbols.min() < 0 or symbols.max() >= self.nsym:
            raise ValueError(f"symbols must lie in [0, {self.nsym})")

        cs = self.chunk_size
        nchunks = -(-n // cs)
        # Pad the tail chunk with symbol 0; the decoder discards the excess.
        padded = np.zeros(nchunks * cs, dtype=np.int64)
        padded[:n] = symbols
        syms = padded.reshape(nchunks, cs)

        counts = np.ones((nchunks, self.nsym), dtype=np.uint32)
        low = np.zeros(nchunks, dtype=np.uint64)
        rng = np.full(nchunks, _MASK32, dtype=np.uint64)
        # worst case ~2 bytes/symbol for tiny alphabets + flush slack
        out = np.zeros((nchunks, 2 * cs + 16), dtype=np.uint8)
        cur = np.zeros(nchunks, dtype=np.int64)

        rows = np.arange(nchunks)
        for i in range(cs):
            s = syms[:, i]
            cums = np.cumsum(counts, axis=1, dtype=np.uint64)
            tot = cums[:, -1]
            cum = np.where(s > 0, cums[rows, np.maximum(s - 1, 0)], np.uint64(0))
            freq = counts[rows, s].astype(np.uint64)

            r = rng // tot
            low = (low + cum * r) & _MASK32
            rng = freq * r
            low, rng, cur = self._renorm_encode(low, rng, out, cur)

            counts[rows, s] += _INC
            over = (tot + np.uint64(_INC)) >= np.uint64(_LIMIT)
            if over.any():
                counts[over] = (counts[over] >> np.uint32(1)) | np.uint32(1)

        # Flush the 4-byte window.
        for _ in range(4):
            out[rows, cur] = ((low >> np.uint64(24)) & np.uint64(0xFF)).astype(np.uint8)
            cur += 1
            low = (low << np.uint64(8)) & _MASK32

        lens = cur.astype(np.uint32)
        header.append(write_varint(len(deflate(lens.tobytes()))))
        header.append(deflate(lens.tobytes()))
        mask = np.arange(out.shape[1])[None, :] < cur[:, None]
        header.append(out[mask].tobytes())
        return b"".join(header)

    @staticmethod
    def _renorm_encode(
        low: np.ndarray, rng: np.ndarray, out: np.ndarray, cur: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        while True:
            same_top = ((low ^ (low + rng)) & _MASK32) < _TOP
            underflow = ~same_top & (rng < _BOT)
            need = same_top | underflow
            if not need.any():
                return low, rng, cur
            rng = np.where(underflow, ((~low) + np.uint64(1)) & (_BOT - np.uint64(1)), rng)
            # A clamped range of zero would deadlock; give it the minimum.
            rng = np.where(underflow & (rng == 0), _BOT - np.uint64(1), rng)
            idx = np.flatnonzero(need)
            out[idx, cur[idx]] = ((low[idx] >> np.uint64(24)) & np.uint64(0xFF)).astype(np.uint8)
            cur[idx] += 1
            low = np.where(need, (low << np.uint64(8)) & _MASK32, low)
            rng = np.where(need, (rng << np.uint64(8)) & _MASK32, rng)

    # -- decoding ----------------------------------------------------------

    def decode(self, blob: bytes) -> np.ndarray:
        n, pos = read_varint(blob)
        cs, pos = read_varint(blob, pos)
        nsym, pos = read_varint(blob, pos)
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        sz, pos = read_varint(blob, pos)
        lens = np.frombuffer(inflate(blob[pos : pos + sz]), dtype=np.uint32).astype(np.int64)
        pos += sz
        payload = np.frombuffer(blob, dtype=np.uint8, offset=pos)

        nchunks = lens.size
        offsets = np.cumsum(lens) - lens
        # Pad reads past each chunk's end (flushed windows may read junk
        # bytes; values are irrelevant once the chunk's symbols are out).
        data = np.zeros(int(lens.sum()) + 8, dtype=np.uint8)
        data[: payload.size] = payload

        counts = np.ones((nchunks, nsym), dtype=np.uint32)
        low = np.zeros(nchunks, dtype=np.uint64)
        rng = np.full(nchunks, _MASK32, dtype=np.uint64)
        ptr = offsets.copy()
        code = np.zeros(nchunks, dtype=np.uint64)
        for _ in range(4):
            code = ((code << np.uint64(8)) | data[ptr].astype(np.uint64)) & _MASK32
            ptr += 1

        rows = np.arange(nchunks)
        syms = np.zeros((nchunks, cs), dtype=np.int64)
        for i in range(cs):
            cums = np.cumsum(counts, axis=1, dtype=np.uint64)
            tot = cums[:, -1]
            r = rng // tot
            dv = ((code - low) & _MASK32) // r
            dv = np.minimum(dv, tot - np.uint64(1))
            s = (cums <= dv[:, None]).sum(axis=1).astype(np.int64)
            syms[:, i] = s

            cum = np.where(s > 0, cums[rows, np.maximum(s - 1, 0)], np.uint64(0))
            freq = counts[rows, s].astype(np.uint64)
            low = (low + cum * r) & _MASK32
            rng = freq * r
            low, rng, code, ptr = self._renorm_decode(low, rng, code, ptr, data)

            counts[rows, s] += _INC
            over = (tot + np.uint64(_INC)) >= np.uint64(_LIMIT)
            if over.any():
                counts[over] = (counts[over] >> np.uint32(1)) | np.uint32(1)

        return syms.reshape(-1)[:n]

    @staticmethod
    def _renorm_decode(
        low: np.ndarray,
        rng: np.ndarray,
        code: np.ndarray,
        ptr: np.ndarray,
        data: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        while True:
            same_top = ((low ^ (low + rng)) & _MASK32) < _TOP
            underflow = ~same_top & (rng < _BOT)
            need = same_top | underflow
            if not need.any():
                return low, rng, code, ptr
            rng = np.where(underflow, ((~low) + np.uint64(1)) & (_BOT - np.uint64(1)), rng)
            rng = np.where(underflow & (rng == 0), _BOT - np.uint64(1), rng)
            idx = np.flatnonzero(need)
            code[idx] = ((code[idx] << np.uint64(8)) | data[ptr[idx]].astype(np.uint64)) & _MASK32
            ptr[idx] += 1
            low = np.where(need, (low << np.uint64(8)) & _MASK32, low)
            rng = np.where(need, (rng << np.uint64(8)) & _MASK32, rng)
