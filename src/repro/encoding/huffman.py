"""Canonical Huffman coding, fully vectorized on both paths.

SZ's second stage is a customized Huffman encoder over quantization codes.
This implementation keeps the blob format of the original chunk-parallel
codec (see :mod:`repro.encoding.huffman_ref`, the retained reference) but
removes every per-symbol Python loop:

* tree construction uses the classic two-queue merge over the unique
  symbols -- one sort plus a run-batched merge loop (all items sharing
  the current minimum count pair off in one numpy step) -- with leaf
  depths recovered by pointer doubling over the parent array.
  Tie-breaking matches the reference heap exactly (equal counts:
  earlier-created node first, leaves in symbol order before internals),
  so code lengths and therefore blobs are byte-identical;
* encoding gathers per-symbol code values/lengths from the canonical
  tables and packs bits with weighted ``np.bincount`` scatters (each
  codeword left-aligned in the 64-bit window spanning its two 32-bit
  words; disjoint bits make the float64 sums exact scatter-ORs);
* decoding walks all chunks in parallel, one table-driven step per
  symbol slot: each step gathers a 32-bit window at every chunk's
  cursor, resolves symbol + length from a fused first-level prefix
  table (with a canonical ``searchsorted`` over the per-length code
  boundaries for the rare longer codes), and advances all cursors at
  once -- the per-symbol work is a handful of numpy ops over the chunk
  vector, never a Python loop over symbols.

Blobs remain self-contained and byte-identical to the reference encoder;
the decoder delegates to the reference chunk state machine only for
codes too long for its 32-bit windows.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from repro.encoding.codecs import deflate, inflate, read_varint, write_varint

__all__ = ["HuffmanCodec", "huffman_code_lengths", "CODEC_PATH"]

# Variant tag recorded in benchmark emissions so regression gating never
# compares this path against baselines from a different implementation.
CODEC_PATH = "vectorized"

# First-level decode table width.  16 bits covers every code the
# length-limited trees produce for realistic quantizer outputs (the
# table costs 2**16 * 4 bytes, built per decode in ~0.1 ms), so the
# slow canonical-search fixup for longer codes almost never runs.
_TABLE_BITS = 16

# Chunk cursors are uint32 bit positions; beyond this payload size (in
# bits) delegate to the reference chunk state machine instead.
_VECTOR_DECODE_MAX_BITS = 1 << 29


def huffman_code_lengths(counts: np.ndarray, length_limit: int = 24) -> np.ndarray:
    """Compute Huffman code lengths for symbol frequencies ``counts``.

    Zero-count symbols get length 0 (no codeword).  If the optimal tree is
    deeper than ``length_limit`` the counts are repeatedly halved (keeping
    them positive) until the limit is met -- a standard zlib-style
    flattening whose rate loss is negligible for the peaked distributions
    produced by quantization.
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.ndim != 1:
        raise ValueError("counts must be 1-D")
    nonzero = np.flatnonzero(counts)
    lengths = np.zeros(counts.size, dtype=np.uint8)
    if nonzero.size == 0:
        return lengths
    if nonzero.size == 1:
        lengths[nonzero[0]] = 1
        return lengths

    work = counts.copy()
    while True:
        depth = _tree_depths(work, nonzero)
        if depth.max() <= length_limit:
            lengths[nonzero] = depth
            return lengths
        scaled = work[nonzero] >> 1
        work[nonzero] = np.maximum(scaled, 1)


def _tree_depths(counts: np.ndarray, nonzero: np.ndarray) -> np.ndarray:
    """Depths of the Huffman tree leaves for the non-zero symbols.

    Two-queue merge: leaves sorted by count once, internal nodes created
    in nondecreasing count order so a FIFO list stays sorted.  On count
    ties a leaf is taken before an internal node and earlier entries
    before later ones, which reproduces the reference heap's
    ``(count, serial)`` ordering (leaf serials precede internal serials)
    and hence the exact same tree shape.

    The merge is run-batched: all items carrying the current minimum
    count are the globally smallest and their pairwise sums (2x the
    minimum) can never undercut later queue entries, so whole runs pair
    off consecutively in one numpy step.  Quantized residual counts are
    massively tied, collapsing the O(n) scalar loop to a few dozen
    batch rounds; fully distinct counts degrade gracefully to the
    scalar two-queue step.
    """
    n = nonzero.size
    vals = counts[nonzero]
    order = np.argsort(vals, kind="stable")
    leaf_counts = vals[order].tolist()
    # parent[i]: leaves are nodes 0..n-1 (in sorted-count order), internal
    # nodes n..2n-2 in creation order; the root (2n-2) has no parent.
    parent = np.empty(2 * n - 2, dtype=np.int64)
    internal: list[int] = []
    li = 0
    ij = 0
    nid = n
    remaining = n - 1  # merges left to perform
    while remaining:
        ilen = len(internal)
        lv = leaf_counts[li] if li < n else None
        iv = internal[ij] if ij < ilen else None
        v = lv if (iv is None or (lv is not None and lv <= iv)) else iv
        # Runs of value v at both queue heads; ties order leaves first.
        a = bisect_right(leaf_counts, v, li, n) - li if lv == v else 0
        b = bisect_right(internal, v, ij, ilen) - ij if iv == v else 0
        npairs = (a + b) >> 1
        if npairs >= 2:
            used = npairs * 2
            ua = min(a, used)  # leaves consumed (they sort before internals)
            ub = used - ua
            pids = np.arange(nid, nid + npairs, dtype=np.int64).repeat(2)
            if ub == 0:
                parent[li : li + ua] = pids
            else:
                parent[li : li + ua] = pids[:ua]
                parent[n + ij : n + ij + ub] = pids[ua:]
            internal.extend([v + v] * npairs)
            li += ua
            ij += ub
            nid += npairs
            remaining -= npairs
            continue
        # Scalar step: merge the two smallest (run too short to batch).
        if li < n and (ij >= ilen or leaf_counts[li] <= internal[ij]):
            x = li
            cx = leaf_counts[li]
            li += 1
        else:
            x = n + ij
            cx = internal[ij]
            ij += 1
        if li < n and (ij >= ilen or leaf_counts[li] <= internal[ij]):
            y = li
            cy = leaf_counts[li]
            li += 1
        else:
            y = n + ij
            cy = internal[ij]
            ij += 1
        parent[x] = nid
        parent[y] = nid
        internal.append(cx + cy)
        nid += 1
        remaining -= 1

    # Leaf depth = hops to root, computed for all nodes at once by
    # pointer doubling: O(nodes * log(depth)) numpy passes.  The root's
    # depth is pinned at 0, so nodes already pointing at it gain nothing
    # from further passes -- no masking needed.
    root = 2 * n - 2
    jump = np.empty(2 * n - 1, dtype=np.int64)
    jump[:root] = parent
    jump[root] = root
    depth = np.ones(2 * n - 1, dtype=np.int64)
    depth[root] = 0
    hop = np.empty_like(depth)
    nxt = np.empty_like(jump)
    while (jump != root).any():
        depth.take(jump, None, hop, "clip")
        depth += hop
        jump.take(jump, None, nxt, "clip")
        jump, nxt = nxt, jump

    out = np.empty(n, dtype=np.int64)
    out[order] = depth[:n]
    return out


class _Canon:
    """Canonical code tables shared by encoder and decoder.

    All per-symbol work runs over the (usually much smaller) set of
    symbols with a codeword; the dense encoder table is built lazily so
    the decoder never pays for it.
    """

    def __init__(self, lengths: np.ndarray) -> None:
        self.lengths = lengths
        nzi = np.flatnonzero(lengths)
        key = lengths[nzi].astype(np.int64)
        self.max_len = int(key.max()) if key.size else 0
        L = self.max_len
        bl_count = np.bincount(key, minlength=L + 1).astype(np.int64)
        bl_count[0] = 0  # zero-length symbols have no codeword
        first_code = np.zeros(L + 2, dtype=np.int64)
        code = 0
        for ln in range(1, L + 1):
            code = (code + int(bl_count[ln - 1])) << 1
            first_code[ln] = code
        self.bl_count = bl_count
        self.first_code = first_code
        # Symbols sorted by (length, symbol); offsets[l] = index of the
        # first symbol of length l within sym_sorted.  ``nzi`` is already
        # symbol-ordered, so a stable sort by length alone suffices.
        order = np.argsort(key, kind="stable")
        self.sym_sorted = nzi[order].astype(np.int64)
        self._sorted_lens = key[order]
        self.offsets = np.zeros(L + 2, dtype=np.int64)
        np.cumsum(bl_count[:-1], out=self.offsets[1 : L + 1])
        if L:
            self.offsets[L + 1] = self.offsets[L] + bl_count[L]
        self._code_of: np.ndarray | None = None

    @property
    def code_of(self) -> np.ndarray:
        """Per-symbol codeword values (dense, encoder-only; lazy)."""
        if self._code_of is None:
            code_of = np.zeros(self.lengths.size, dtype=np.int64)
            ln = self._sorted_lens
            code_of[self.sym_sorted] = (
                self.first_code[ln]
                + np.arange(self.sym_sorted.size, dtype=np.int64)
                - self.offsets[ln]
            )
            self._code_of = code_of
        return self._code_of

    def build_table(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        """First-level decode table over ``k`` peek bits.

        Returns ``(symbols, lens)`` arrays of size ``2**k``; ``lens == 0``
        marks prefixes of codes longer than ``k``.  Canonical intervals of
        codes no longer than ``k`` bits tile ``[0, E)`` contiguously in
        (length, symbol) order, so the table is two ``np.repeat`` calls.
        """
        size = 1 << k
        table_sym = np.zeros(size, dtype=np.int64)
        table_len = np.zeros(size, dtype=np.uint8)
        lens = self._sorted_lens
        short = lens <= k
        syms = self.sym_sorted[short]
        lens = lens[short]
        if syms.size:
            spans = np.int64(1) << (k - lens)
            covered = int(spans.sum())
            table_sym[:covered] = np.repeat(syms, spans)
            table_len[:covered] = np.repeat(lens, spans)
        return table_sym, table_len


class HuffmanCodec:
    """Self-contained canonical Huffman blobs with chunked parallel decode.

    Parameters
    ----------
    chunk_size:
        Number of symbols per independently-decodable chunk.  Smaller
        chunks mean more offset overhead but a wider decode state machine.
    length_limit:
        Maximum codeword length.
    """

    def __init__(self, chunk_size: int = 256, length_limit: int = 24) -> None:
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if not 2 <= length_limit <= 32:
            raise ValueError("length_limit must be in [2, 32]")
        self.chunk_size = chunk_size
        self.length_limit = length_limit

    # -- encoding ----------------------------------------------------------

    def encode(self, symbols: np.ndarray) -> bytes:
        symbols = np.ascontiguousarray(symbols, dtype=np.int64).ravel()
        if symbols.size and symbols.min() < 0:
            raise ValueError("symbols must be non-negative")
        n = symbols.size
        header = [write_varint(n), write_varint(self.chunk_size)]
        if n == 0:
            header.append(write_varint(0))  # empty length table
            return b"".join(header)

        counts = np.bincount(symbols)
        lengths = huffman_code_lengths(counts, self.length_limit)
        canon = _Canon(lengths)

        enc_len = lengths[symbols].astype(np.int64)
        enc_val = canon.code_of[symbols]
        ends = np.cumsum(enc_len)
        starts = ends - enc_len
        total_bits = int(ends[-1])
        payload = _pack_codes(enc_val, enc_len, starts, total_bits)

        # Chunk offsets stored as uint32 deltas (they delta-compress well
        # and keep the side channel tiny even at small chunk sizes).
        chunk_starts = starts[:: self.chunk_size]
        deltas = np.diff(chunk_starts, prepend=0).astype(np.uint32)

        len_table = deflate(lengths.tobytes())
        offs = deflate(deltas.tobytes())
        header.append(write_varint(len(len_table)))
        header.append(len_table)
        header.append(write_varint(len(offs)))
        header.append(offs)
        header.append(write_varint(total_bits))
        header.append(payload)
        return b"".join(header)

    # -- decoding ----------------------------------------------------------

    def decode(self, blob: bytes) -> np.ndarray:
        n, pos = read_varint(blob)
        chunk_size, pos = read_varint(blob, pos)
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        sz, pos = read_varint(blob, pos)
        lengths = np.frombuffer(inflate(blob[pos : pos + sz]), dtype=np.uint8)
        pos += sz
        sz, pos = read_varint(blob, pos)
        deltas = np.frombuffer(inflate(blob[pos : pos + sz]), dtype=np.uint32)
        chunk_starts = np.cumsum(deltas.astype(np.int64))
        pos += sz
        total_bits, pos = read_varint(blob, pos)
        payload = blob[pos:]

        canon = _Canon(lengths)
        if canon.max_len == 0:
            raise ValueError("corrupt Huffman blob: empty code")

        # Degenerate single-symbol stream decodes without touching bits.
        if canon.sym_sorted.size == 1:
            return np.full(n, canon.sym_sorted[0], dtype=np.int64)

        # The 32-bit windows carry 32 - 7 = 25 valid bits at worst, the
        # chunk cursors are uint32, and the fused decode table packs the
        # symbol into 26 bits; any of these outgrown delegates to the
        # reference chunk state machine.
        if (
            canon.max_len > 25
            or total_bits > _VECTOR_DECODE_MAX_BITS
            or lengths.size >= (1 << 26)
        ):
            from repro.encoding.huffman_ref import ReferenceHuffmanCodec

            ref = ReferenceHuffmanCodec(self.chunk_size, self.length_limit)
            return ref._decode_chunks(payload, total_bits, n, chunk_size, chunk_starts, canon)

        return self._decode_vector(payload, total_bits, n, chunk_size, chunk_starts, canon)

    def _decode_vector(
        self,
        payload: bytes,
        total_bits: int,
        n: int,
        chunk_size: int,
        chunk_starts: np.ndarray,
        canon: _Canon,
    ) -> np.ndarray:
        nchunks = chunk_starts.size
        if nchunks != (n + chunk_size - 1) // chunk_size:
            raise ValueError("corrupt Huffman stream: chunk table mismatch")
        raw = np.frombuffer(payload, dtype=np.uint8)
        if total_bits > 8 * raw.size:
            raise ValueError("corrupt Huffman stream: ran past end of payload")
        if chunk_starts.size and (
            chunk_starts[0] < 0 or int(chunk_starts[-1]) >= total_bits
        ):
            raise ValueError("corrupt Huffman stream: chunk offset out of range")

        L = canon.max_len
        k = min(_TABLE_BITS, L)
        table_sym, table_len = canon.build_table(k)
        # Fused first-level table: one gather yields (symbol << 6) | length,
        # so each walk step needs a single lookup.  Length 0 marks prefixes
        # of codes longer than k bits (resolved canonically below).
        fused = ((table_sym << 6) | table_len).astype(np.uint32)

        # window(byte) = payload bits 8*byte..8*byte+31, built from
        # byte-aligned 32-bit reads; shifting by `pos & 7` left-aligns the
        # code at any bit cursor (uint32 arithmetic wraps, standing in for
        # the & 0xFFFFFFFF).
        pad = np.zeros(raw.size + 8, dtype=np.uint32)
        pad[: raw.size] = raw
        W = (
            (pad[:-7] << np.uint32(24))
            | (pad[1:-6] << np.uint32(16))
            | (pad[2:-5] << np.uint32(8))
            | pad[3:-4]
        )

        # Canonical boundaries for codes longer than k bits: with Kraft
        # equality the intervals B[l] partition [0, 2**L), so searchsorted
        # is total; the rank check flags corrupt streams (Kraft < 1 gaps).
        if L > k:
            lens_1L = np.arange(1, L + 1)
            bounds = (canon.first_code[1 : L + 1] + canon.bl_count[1 : L + 1]) << (
                L - lens_1L
            )
        sh_k = np.uint32(32 - k)
        sh_L = np.uint32(32 - L)
        u3 = np.uint32(3)
        u7 = np.uint32(7)
        low6 = np.uint32(63)
        end = np.uint32(total_bits)
        iters = min(chunk_size, n)
        rem_last = n - (nchunks - 1) * chunk_size

        # Parallel walk: every chunk consumes one symbol per iteration.
        # Cursors clamp at total_bits so window reads stay in range; an
        # overrun is detected after the loop (the decoded lengths no longer
        # fit the payload).  Slots past a short last chunk's end are not
        # part of the output and are ignored throughout.  The loop body
        # writes into preallocated buffers (`out=`) -- at ~100-300 cursors
        # per step, allocation would otherwise dominate.
        pos = chunk_starts.astype(np.uint32)
        out = np.empty((iters, nchunks), dtype=np.uint32)
        b = np.empty(nchunks, dtype=np.uint32)
        w = np.empty(nchunks, dtype=np.uint32)
        ln = np.empty(nchunks, dtype=np.uint32)
        has_long = L > k  # only then can a step yield length 0 that must
        # be resolved in-loop; otherwise zeros stall their cursor and are
        # diagnosed once after the walk.
        for t in range(iters):
            f = out[t]
            np.right_shift(pos, u3, out=b)
            W.take(b, None, w, "clip")
            np.bitwise_and(pos, u7, out=b)
            np.left_shift(w, b, out=w)
            np.right_shift(w, sh_k, out=b)
            fused.take(b, None, f, "clip")
            np.bitwise_and(f, low6, out=ln)
            if has_long and not ln.all():
                zi = np.flatnonzero(ln == 0)
                if t >= rem_last:
                    zi = zi[zi != nchunks - 1]
                if zi.size:
                    v = (w[zi] >> sh_L).astype(np.int64)
                    lns = np.minimum(np.searchsorted(bounds, v, side="right") + 1, L)
                    idx = (v >> (L - lns)) - canon.first_code[lns]
                    ok = (idx >= 0) & (idx < canon.bl_count[lns])
                    if not ok.all():
                        if (pos[zi[~ok]] >= end).any():
                            raise ValueError(
                                "corrupt Huffman stream: ran past end of payload"
                            )
                        raise ValueError("corrupt Huffman stream: unresolvable code")
                    sym = canon.sym_sorted[idx + canon.offsets[lns]]
                    fz = ((sym << 6) | lns).astype(np.uint32)
                    f[zi] = fz
                    ln[zi] = fz & low6
            np.add(pos, ln, out=pos)
            np.minimum(pos, end, out=pos)

        # Zeros surviving the walk on real output slots mean a prefix with
        # no codeword (a Kraft gap -- corrupt table or payload).
        lens_out = out & low6
        if (lens_out[:rem_last] == 0).any() or (
            lens_out[rem_last:, :-1] == 0
        ).any():
            raise ValueError("corrupt Huffman stream: unresolvable code")

        # Each non-last chunk must land no further than the next chunk's
        # start; the last chunk's decoded lengths must fit the payload
        # (clamped cursors make the final position unreliable, the length
        # sum is not).
        if nchunks > 1 and (
            (pos[:-1].astype(np.int64) > chunk_starts[1:]).any()
        ):
            raise ValueError("corrupt Huffman stream: ran past end of payload")
        last_bits = int(lens_out[:rem_last, -1].sum(dtype=np.int64))
        if int(chunk_starts[-1]) + last_bits > total_bits:
            raise ValueError("corrupt Huffman stream: ran past end of payload")

        # Chunks are contiguous and only the last may be short, so the
        # fused values in output order are the first n of the
        # (step, chunk) matrix transposed.
        return (out.T.reshape(-1)[:n] >> np.uint32(6)).astype(np.int64)


def _pack_codes(
    enc_val: np.ndarray, enc_len: np.ndarray, starts: np.ndarray, total_bits: int
) -> bytes:
    """Pack codewords MSB-first into bytes via word accumulators.

    Each codeword (<= 32 bits, starting at bit offset ``starts[i]``) is
    left-aligned inside the 64-bit window covering its two 32-bit words.
    Codewords never overlap, so every accumulator word is a sum of
    bit-disjoint 32-bit values -- which makes ``np.bincount`` with float64
    weights an exact scatter-OR (disjoint bits sum without carries and
    stay below 2**32, inside float64's integer range), and it runs far
    faster than ``np.bitwise_or.at``.
    """
    nwords = (total_bits + 31) >> 5
    word = starts >> 5
    bitoff = (starts & 31).astype(np.uint64)
    contrib = enc_val.astype(np.uint64) << (
        np.uint64(64) - bitoff - enc_len.astype(np.uint64)
    )
    acc = np.bincount(
        word, weights=(contrib >> np.uint64(32)).astype(np.float64), minlength=nwords
    )
    acc[1:] += np.bincount(
        word, weights=(contrib & np.uint64(0xFFFFFFFF)).astype(np.float64),
        minlength=nwords,
    )[: nwords - 1]
    nbytes = (total_bits + 7) >> 3
    return acc.astype(np.uint32)[:nwords].astype(">u4").tobytes()[:nbytes]
