"""Pure-numpy GF(256) Reed-Solomon erasure coding for chunk parity.

The chunked pipeline's per-chunk CRCs turn corruption into *located*
erasures: we always know exactly which chunk blobs are damaged.  That is
the easy half of Reed-Solomon -- no error location, only erasure
reconstruction -- so the codec here is a systematic MDS erasure code over
GF(2^8): ``k`` parity blocks are appended to every group of ``m`` data
blocks, and any ``m`` surviving blocks (data or parity, in any mix)
reconstruct the group.  The generator is a Cauchy matrix, whose square
submatrices are all nonsingular, which is what makes the code MDS for
every loss pattern.

Arithmetic is GF(256) with the AES/QR-code primitive polynomial
``x^8 + x^4 + x^3 + x^2 + 1`` (0x11D).  The hot path is one 64 KiB
scalar-times-vector lookup table: ``parity ^= MUL[coeff][data]`` is a
single fancy-index plus XOR per (coefficient, block) pair, so encoding
``k`` parities over ``m`` blocks costs ``k * m`` vectorized passes over
the block bytes -- a few GB/s in numpy, far cheaper than the compression
work that produced the blocks.

Blocks in a group may have different lengths (compressed chunks do);
they are implicitly zero-padded to the group's longest block, and every
parity block has that padded length.  Callers keep the true lengths (the
chunk table already stores them) and trim after reconstruction.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "InsufficientParityError",
    "MAX_GROUP_BLOCKS",
    "decode_blocks",
    "encode_parity",
    "gf_inv",
    "gf_mul",
]

#: GF(256) has 255 nonzero elements; the Cauchy construction needs
#: ``m + k`` distinct field elements, so a group (data + parity blocks)
#: can never exceed 255.
MAX_GROUP_BLOCKS = 255

_PRIM_POLY = 0x11D


class InsufficientParityError(ValueError):
    """Raised when more blocks are lost than the parity can reconstruct."""


def _build_tables() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(EXP, LOG, MUL) tables for GF(256) under the 0x11D polynomial."""
    exp = np.zeros(512, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int32)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= _PRIM_POLY
    exp[255:510] = exp[:255]  # wraparound so exp[log a + log b] never overflows
    # Full 256x256 product table: MUL[a, b] = a * b in GF(256).
    a = np.arange(256)
    la, lb = np.meshgrid(log[a], log[a], indexing="ij")
    mul = exp[(la + lb) % 255].astype(np.uint8)
    mul[0, :] = 0
    mul[:, 0] = 0
    return exp, log, mul


_EXP, _LOG, _MUL = _build_tables()


def gf_mul(a: int, b: int) -> int:
    """Product of two GF(256) elements."""
    return int(_MUL[a, b])


def gf_inv(a: int) -> int:
    """Multiplicative inverse in GF(256); 0 has none."""
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return int(_EXP[255 - _LOG[a]])


def _cauchy_matrix(m: int, k: int) -> np.ndarray:
    """The ``k x m`` Cauchy generator: C[j][i] = 1 / (x_j ^ y_i).

    ``x_j = j`` indexes parity rows and ``y_i = k + i`` data columns; the
    two index sets are disjoint so the denominator is never zero, and
    every square submatrix of a Cauchy matrix is invertible.
    """
    xj = np.arange(k, dtype=np.int64)[:, None]
    yi = np.arange(k, k + m, dtype=np.int64)[None, :]
    denom = xj ^ yi
    return _EXP[(255 - _LOG[denom]) % 255].astype(np.uint8)


def _as_matrix(blocks: list[bytes | None], length: int) -> np.ndarray:
    """Stack blocks into a zero-padded ``(n, length)`` uint8 matrix."""
    out = np.zeros((len(blocks), length), dtype=np.uint8)
    for i, b in enumerate(blocks):
        if b:
            out[i, : len(b)] = np.frombuffer(b, dtype=np.uint8)
    return out


def _mat_vec_blocks(coeffs: np.ndarray, blocks: np.ndarray) -> np.ndarray:
    """GF(256) matrix product ``coeffs (r x n) @ blocks (n x L)``."""
    r = coeffs.shape[0]
    out = np.zeros((r, blocks.shape[1]), dtype=np.uint8)
    for j in range(r):
        for i, c in enumerate(coeffs[j]):
            if c:
                out[j] ^= _MUL[c][blocks[i]]
    return out


def encode_parity(blocks: list[bytes], k: int) -> list[bytes]:
    """``k`` parity blocks for one group of data blocks.

    Each parity block is as long as the group's longest data block
    (shorter data blocks count as zero-padded).  ``k = 0`` returns no
    parity; an empty group is rejected -- the caller decides group
    geometry and should never produce one.
    """
    if k < 0:
        raise ValueError(f"parity count must be non-negative, got {k}")
    if not blocks:
        raise ValueError("cannot encode parity for an empty group")
    m = len(blocks)
    if m + k > MAX_GROUP_BLOCKS:
        raise ValueError(
            f"group of {m} data + {k} parity blocks exceeds the GF(256) "
            f"limit of {MAX_GROUP_BLOCKS}"
        )
    if k == 0:
        return []
    length = max(len(b) for b in blocks)
    data = _as_matrix(list(blocks), length)
    parity = _mat_vec_blocks(_cauchy_matrix(m, k), data)
    return [p.tobytes() for p in parity]


def decode_blocks(
    blocks: list[bytes | None],
    parity: list[bytes | None],
    lens: list[int],
) -> list[bytes]:
    """Reconstruct the missing (``None``) data blocks of one group.

    ``blocks`` holds the group's data blocks with erased entries as
    ``None``; ``parity`` likewise for the parity blocks produced by
    :func:`encode_parity` (a damaged parity block is just another
    erasure).  ``lens`` gives every data block's true byte length, used
    to trim the zero padding off reconstructed blocks.

    Returns the complete list of data blocks.  Raises
    :class:`InsufficientParityError` when fewer than ``m`` blocks of the
    group survive.
    """
    m, k = len(blocks), len(parity)
    if len(lens) != m:
        raise ValueError(f"need {m} lengths, got {len(lens)}")
    missing = [i for i, b in enumerate(blocks) if b is None]
    if not missing:
        return list(blocks)  # type: ignore[return-value]
    have_parity = [j for j, p in enumerate(parity) if p is not None]
    if len(missing) > len(have_parity):
        raise InsufficientParityError(
            f"{len(missing)} data blocks lost but only {len(have_parity)} "
            f"of {k} parity blocks survive"
        )
    length = max(
        [len(b) for b in blocks if b is not None]
        + [len(p) for p in parity if p is not None]
    )
    cauchy = _cauchy_matrix(m, k)

    # Build the m x m system A @ data = survivors from m surviving rows of
    # the extended generator [I; C]: identity rows for surviving data
    # blocks (free), Cauchy rows for the parity blocks standing in for the
    # missing ones.
    rows = np.zeros((m, m), dtype=np.uint8)
    survivors = np.zeros((m, length), dtype=np.uint8)
    surviving_data = [i for i in range(m) if i not in set(missing)]
    for r, i in enumerate(surviving_data):
        rows[r, i] = 1
        survivors[r, : len(blocks[i])] = np.frombuffer(blocks[i], dtype=np.uint8)
    for r, j in zip(range(len(surviving_data), m), have_parity):
        rows[r] = cauchy[j]
        survivors[r, : len(parity[j])] = np.frombuffer(parity[j], dtype=np.uint8)

    inv = _gf_invert(rows)
    rebuilt = _mat_vec_blocks(inv[missing], survivors)
    out = list(blocks)
    for r, i in enumerate(missing):
        out[i] = rebuilt[r, : lens[i]].tobytes()
    return out  # type: ignore[return-value]


def _gf_invert(mat: np.ndarray) -> np.ndarray:
    """Invert a square GF(256) matrix by Gauss-Jordan elimination.

    The matrices here are rows of [I; C] with C Cauchy, so they are
    always nonsingular; a singular input means caller corruption and
    raises ``ValueError``.
    """
    n = mat.shape[0]
    aug = np.concatenate([mat.astype(np.uint8), np.eye(n, dtype=np.uint8)], axis=1)
    for col in range(n):
        pivot = next((r for r in range(col, n) if aug[r, col]), None)
        if pivot is None:
            raise ValueError("singular matrix in GF(256) erasure decode")
        if pivot != col:
            aug[[col, pivot]] = aug[[pivot, col]]
        aug[col] = _MUL[gf_inv(int(aug[col, col]))][aug[col]]
        for r in range(n):
            if r != col and aug[r, col]:
                aug[r] ^= _MUL[int(aug[r, col])][aug[col]]
    return aug[:, n:]
