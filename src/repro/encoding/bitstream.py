"""MSB-first bit streams with vectorized bulk packing.

Two access styles are provided:

* :class:`BitWriter` / :class:`BitReader` -- incremental, scalar-friendly
  streams used by container headers and by small per-block metadata.
* :func:`pack_fixed_width` / :func:`unpack_fixed_width` -- fully vectorized
  packing of integer arrays at a fixed bit width, the hot path used by the
  ISABELA permutation index and several side channels.

All streams are MSB-first: the first bit written is the most significant
bit of the first byte.  This matches the convention of the canonical
Huffman codec in :mod:`repro.encoding.huffman`.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "BitWriter",
    "BitReader",
    "pack_fixed_width",
    "unpack_fixed_width",
    "pack_varbits",
    "unpack_varbits",
]


class BitWriter:
    """Accumulates bits MSB-first into a growable byte buffer.

    The writer keeps a small Python-int accumulator; bulk array writes go
    through :meth:`write_bit_array`, which uses ``np.packbits``.
    """

    def __init__(self) -> None:
        self._chunks: list[bytes] = []
        self._acc = 0  # pending bits, MSB-first in the low `_nacc` bits
        self._nacc = 0
        self._nbits = 0

    def __len__(self) -> int:
        """Total number of bits written so far."""
        return self._nbits

    def write_bit(self, bit: int) -> None:
        """Append a single bit (any truthy value counts as 1)."""
        self.write_bits(1 if bit else 0, 1)

    def write_bits(self, value: int, nbits: int) -> None:
        """Append the low ``nbits`` of ``value``, MSB of the field first."""
        if nbits < 0:
            raise ValueError(f"nbits must be non-negative, got {nbits}")
        if nbits == 0:
            return
        value &= (1 << nbits) - 1
        self._acc = (self._acc << nbits) | value
        self._nacc += nbits
        self._nbits += nbits
        # Flush whole bytes out of the accumulator.
        while self._nacc >= 8:
            self._nacc -= 8
            self._chunks.append(bytes([(self._acc >> self._nacc) & 0xFF]))
        self._acc &= (1 << self._nacc) - 1

    def write_bit_array(self, bits: np.ndarray) -> None:
        """Append a 1-D array of 0/1 values as individual bits."""
        bits = np.asarray(bits).astype(np.uint8).ravel()
        if bits.size == 0:
            return
        if self._nacc == 0:
            # Fast path: byte-aligned, pack directly.
            self._chunks.append(np.packbits(bits).tobytes())
            self._nbits += bits.size
            tail = bits.size % 8
            if tail:
                # packbits pads with zeros; pull the last partial byte back
                # into the accumulator so subsequent writes are correct.
                last = self._chunks.pop()
                self._chunks.append(last[:-1])
                self._acc = last[-1] >> (8 - tail)
                self._nacc = tail
        else:
            for b in bits.tolist():
                self.write_bits(int(b), 1)

    def getvalue(self) -> bytes:
        """Return the stream as bytes, zero-padding the final partial byte."""
        out = b"".join(self._chunks)
        if self._nacc:
            out += bytes([(self._acc << (8 - self._nacc)) & 0xFF])
        return out

    @property
    def nbits(self) -> int:
        return self._nbits


class BitReader:
    """Reads an MSB-first bit stream produced by :class:`BitWriter`."""

    def __init__(self, data: bytes, nbits: int | None = None) -> None:
        self._bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
        if nbits is not None:
            if nbits > self._bits.size:
                raise ValueError(f"stream holds {self._bits.size} bits, {nbits} requested")
            self._bits = self._bits[:nbits]
        self._pos = 0

    def __len__(self) -> int:
        return self._bits.size

    @property
    def pos(self) -> int:
        """Current bit cursor."""
        return self._pos

    @property
    def remaining(self) -> int:
        return self._bits.size - self._pos

    def read_bit(self) -> int:
        if self._pos >= self._bits.size:
            raise EOFError("bit stream exhausted")
        bit = int(self._bits[self._pos])
        self._pos += 1
        return bit

    def read_bits(self, nbits: int) -> int:
        """Read ``nbits`` as an unsigned integer (MSB of the field first)."""
        if nbits == 0:
            return 0
        if self._pos + nbits > self._bits.size:
            raise EOFError(f"requested {nbits} bits, only {self.remaining} left")
        chunk = self._bits[self._pos : self._pos + nbits]
        self._pos += nbits
        value = 0
        for b in chunk.tolist():
            value = (value << 1) | b
        return value

    def read_bit_array(self, nbits: int) -> np.ndarray:
        """Read ``nbits`` bits as a uint8 0/1 array."""
        if self._pos + nbits > self._bits.size:
            raise EOFError(f"requested {nbits} bits, only {self.remaining} left")
        chunk = self._bits[self._pos : self._pos + nbits]
        self._pos += nbits
        return chunk.copy()

    def seek(self, bitpos: int) -> None:
        if not 0 <= bitpos <= self._bits.size:
            raise ValueError(f"seek position {bitpos} outside stream of {self._bits.size} bits")
        self._pos = bitpos


def pack_fixed_width(values: np.ndarray, width: int) -> bytes:
    """Pack a 1-D array of non-negative ints at ``width`` bits each.

    Fully vectorized: expands each value into its ``width`` bits via
    broadcasting and a single ``np.packbits`` call.
    """
    if width < 0 or width > 64:
        raise ValueError(f"width must be in [0, 64], got {width}")
    values = np.ascontiguousarray(values, dtype=np.uint64).ravel()
    if width == 0:
        if np.any(values != 0):
            raise ValueError("width 0 can only encode zeros")
        return b""
    if values.size and int(values.max()) >> width:
        raise ValueError(f"value {int(values.max())} does not fit in {width} bits")
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    bits = ((values[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bits.ravel()).tobytes()


def unpack_fixed_width(data: bytes, width: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_fixed_width`; returns a uint64 array."""
    if width == 0:
        return np.zeros(count, dtype=np.uint64)
    nbits = width * count
    bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8), count=nbits)
    bits = bits.reshape(count, width).astype(np.uint64)
    weights = np.left_shift(np.uint64(1), np.arange(width - 1, -1, -1, dtype=np.uint64))
    return (bits * weights).sum(axis=1, dtype=np.uint64)


def pack_varbits(values: np.ndarray, widths: np.ndarray) -> bytes:
    """Pack ``values[i]`` at ``widths[i]`` bits each (MSB-first per field).

    Vectorized with ``np.uint64`` accumulators: each field (up to 64 bits,
    starting at bit offset ``starts[i]``) straddles at most two 64-bit
    words, and its two halves are ORed into per-word accumulators with
    ``np.bitwise_or.at`` -- a constant number of numpy passes instead of
    one bit-scatter pass per bit position.  The decoder must know the
    widths (FPZIP recovers them from the Huffman-coded residual classes).
    """
    values = np.ascontiguousarray(values, dtype=np.uint64).ravel()
    widths = np.ascontiguousarray(widths, dtype=np.int64).ravel()
    if values.size != widths.size:
        raise ValueError("values and widths must have the same length")
    if widths.size == 0:
        return b""
    if widths.min() < 0 or widths.max() > 64:
        raise ValueError("widths must be in [0, 64]")
    ends = np.cumsum(widths)
    starts = ends - widths
    total = int(ends[-1])
    if total == 0:
        return b""
    w64 = widths.astype(np.uint64)
    vals = values & _low_mask(w64)  # keep the low `width` bits only
    word = starts >> 6
    bitoff = (starts & 63).astype(np.uint64)
    # Zero-width fields carry no bits, and one starting exactly at the end
    # of the stream would scatter past the accumulator -- drop them.
    if widths.min() == 0:
        keep = w64 > 0
        vals, w64 = vals[keep], w64[keep]
        word, bitoff = word[keep], bitoff[keep]
    # Left-align each field inside the 128-bit window over words
    # [word, word+1]: high half when the field fits above bit 64 of the
    # window, both halves when it straddles.
    head = np.uint64(64) - bitoff  # bits available in the first word
    fits = w64 <= head
    hi = np.where(fits, vals << ((head - w64) & np.uint64(63)), vals >> (w64 - head))
    lo = np.where(fits, np.uint64(0), vals << ((np.uint64(128) - bitoff - w64) & np.uint64(63)))
    nwords = (total + 63) >> 6
    acc = np.zeros(nwords + 1, dtype=np.uint64)
    np.bitwise_or.at(acc, word, hi)
    np.bitwise_or.at(acc, word + 1, lo)
    nbytes = (total + 7) >> 3
    return acc[:nwords].astype(">u8").tobytes()[:nbytes]


def _low_mask(widths: np.ndarray) -> np.ndarray:
    """``(1 << widths) - 1`` as uint64, valid for widths in [0, 64]."""
    full = widths >= np.uint64(64)
    return np.where(
        full, np.uint64(0xFFFFFFFFFFFFFFFF), (np.uint64(1) << (widths % np.uint64(64))) - np.uint64(1)
    )


def unpack_varbits(data: bytes, widths: np.ndarray) -> np.ndarray:
    """Inverse of :func:`pack_varbits`; returns uint64 values.

    Each field is read from a 64-bit window gathered at its starting
    byte, with a ninth byte patched in for fields that straddle the
    window -- a constant number of numpy passes.
    """
    widths = np.ascontiguousarray(widths, dtype=np.int64).ravel()
    if widths.size == 0:
        return np.zeros(0, dtype=np.uint64)
    ends = np.cumsum(widths)
    starts = ends - widths
    total = int(ends[-1])
    if total == 0:
        return np.zeros(widths.size, dtype=np.uint64)
    raw = np.frombuffer(data, dtype=np.uint8)
    if total > 8 * raw.size:
        raise ValueError(f"stream holds {8 * raw.size} bits, {total} required")
    pad = np.zeros(raw.size + 9, dtype=np.uint8)
    pad[: raw.size] = raw
    byte = starts >> 3
    sh = (starts & 7).astype(np.uint64)
    win = np.zeros(starts.size, dtype=np.uint64)
    for j in range(8):
        win |= pad[byte + j].astype(np.uint64) << np.uint64(8 * (7 - j))
    ninth = pad[byte + 8].astype(np.uint64)
    # Bits [starts, starts+64) left-aligned: shift the window up by the
    # sub-byte offset and pull the spilled bits in from the ninth byte.
    aligned = (win << sh) | (ninth >> ((np.uint64(8) - sh) & np.uint64(63)))
    aligned = np.where(sh == 0, win, aligned)
    w64 = widths.astype(np.uint64)
    values = aligned >> ((np.uint64(64) - w64) & np.uint64(63))
    return np.where(w64 == 0, np.uint64(0), values)
