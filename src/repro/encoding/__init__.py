"""Entropy-coding and byte-framing substrate shared by every compressor.

The subpackage provides:

* :mod:`repro.encoding.bitstream` -- MSB-first bit readers/writers with
  vectorized bulk operations.
* :mod:`repro.encoding.huffman` -- canonical Huffman coding with a
  chunk-parallel (numpy state machine) decoder.
* :mod:`repro.encoding.codecs` -- zigzag/varint integer codecs, sign-bitmap
  packing and the DEFLATE (zlib) stage used as SZ's optional third stage.
* :mod:`repro.encoding.container` -- a small tagged section container so
  every compressor emits a genuine self-describing byte stream (compression
  ratios in the experiments are measured on these real bytes).
* :mod:`repro.encoding.rs` -- pure-numpy GF(256) Reed-Solomon erasure
  coding behind the v3 chunk-parity sections.
"""

from repro.encoding.bitstream import (
    BitReader,
    BitWriter,
    pack_fixed_width,
    pack_varbits,
    unpack_fixed_width,
    unpack_varbits,
)
from repro.encoding.codecs import (
    decode_sign_bitmap,
    deflate,
    encode_sign_bitmap,
    inflate,
    read_varint,
    write_varint,
    zigzag_decode,
    zigzag_encode,
)
from repro.encoding.container import (
    ChecksumError,
    Container,
    ContainerError,
    StreamError,
    TruncatedStreamError,
    section_byte_ranges,
)
from repro.encoding.crc import crc32c
from repro.encoding.huffman import HuffmanCodec
from repro.encoding.range_coder import RangeCodec
from repro.encoding.rs import (
    MAX_GROUP_BLOCKS,
    InsufficientParityError,
    decode_blocks,
    encode_parity,
)

__all__ = [
    "BitReader",
    "BitWriter",
    "ChecksumError",
    "Container",
    "ContainerError",
    "InsufficientParityError",
    "MAX_GROUP_BLOCKS",
    "StreamError",
    "TruncatedStreamError",
    "HuffmanCodec",
    "RangeCodec",
    "crc32c",
    "decode_blocks",
    "encode_parity",
    "decode_sign_bitmap",
    "deflate",
    "section_byte_ranges",
    "encode_sign_bitmap",
    "inflate",
    "pack_fixed_width",
    "pack_varbits",
    "read_varint",
    "unpack_fixed_width",
    "unpack_varbits",
    "write_varint",
    "zigzag_decode",
    "zigzag_encode",
]
