"""Reference canonical Huffman codec (pre-vectorization implementation).

This module is the retained, heap-based implementation that
:mod:`repro.encoding.huffman` replaced.  It is kept verbatim for two
reasons:

* the property-test suite asserts the vectorized codec produces
  byte-identical blobs and identical decodes against this reference, so
  any future change to the fast path is checked against frozen
  behaviour;
* the vectorized decoder falls back to this chunk state machine for
  streams too large for its position-parallel working set.

Do not "improve" this module; it is the specification.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.encoding.codecs import deflate, inflate, read_varint, write_varint

__all__ = ["ReferenceHuffmanCodec", "reference_code_lengths"]

_TABLE_BITS = 14  # first-level decode table covers codes up to 14 bits


def reference_code_lengths(counts: np.ndarray, length_limit: int = 24) -> np.ndarray:
    """Compute Huffman code lengths for symbol frequencies ``counts``.

    Zero-count symbols get length 0 (no codeword).  If the optimal tree is
    deeper than ``length_limit`` the counts are repeatedly halved (keeping
    them positive) until the limit is met -- a standard zlib-style
    flattening whose rate loss is negligible for the peaked distributions
    produced by quantization.
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.ndim != 1:
        raise ValueError("counts must be 1-D")
    nonzero = np.flatnonzero(counts)
    lengths = np.zeros(counts.size, dtype=np.uint8)
    if nonzero.size == 0:
        return lengths
    if nonzero.size == 1:
        lengths[nonzero[0]] = 1
        return lengths

    work = counts.copy()
    while True:
        depth = _tree_depths(work, nonzero)
        if depth.max() <= length_limit:
            lengths[nonzero] = depth
            return lengths
        scaled = work[nonzero] >> 1
        work[nonzero] = np.maximum(scaled, 1)


def _tree_depths(counts: np.ndarray, nonzero: np.ndarray) -> np.ndarray:
    """Depths of the Huffman tree leaves for the non-zero symbols."""
    heap: list[tuple[int, int, object]] = []
    serial = 0
    for sym in nonzero.tolist():
        heap.append((int(counts[sym]), serial, sym))
        serial += 1
    heapq.heapify(heap)
    parent: dict[object, object] = {}
    while len(heap) > 1:
        c1, _, n1 = heapq.heappop(heap)
        c2, _, n2 = heapq.heappop(heap)
        node = ("i", serial)
        parent[_key(n1)] = node
        parent[_key(n2)] = node
        heapq.heappush(heap, (c1 + c2, serial, node))
        serial += 1
    depths = np.zeros(nonzero.size, dtype=np.int64)
    # Depth of each leaf = number of parent hops to the root.  Internal
    # node depths are memoized to keep this linear.
    memo: dict[object, int] = {_key(heap[0][2]): 0}

    def depth_of(node: object) -> int:
        # Iterative walk to the nearest memoized ancestor (the tree can be
        # as deep as the alphabet, so recursion is not safe here).
        chain = []
        key = _key(node)
        while key not in memo:
            chain.append(key)
            key = _key(parent[key])
        d = memo[key]
        for k in reversed(chain):
            d += 1
            memo[k] = d
        return d

    for i, sym in enumerate(nonzero.tolist()):
        depths[i] = depth_of(sym)
    return depths


def _key(node: object) -> object:
    return node if isinstance(node, tuple) else ("s", node)


class _Canon:
    """Canonical code tables shared by encoder and decoder."""

    def __init__(self, lengths: np.ndarray) -> None:
        self.lengths = lengths
        self.max_len = int(lengths.max()) if lengths.size else 0
        L = self.max_len
        bl_count = np.bincount(lengths[lengths > 0], minlength=L + 1).astype(np.int64)
        bl_count[0] = 0  # zero-length symbols have no codeword
        first_code = np.zeros(L + 2, dtype=np.int64)
        code = 0
        for ln in range(1, L + 1):
            code = (code + int(bl_count[ln - 1])) << 1
            first_code[ln] = code
        self.bl_count = bl_count
        self.first_code = first_code
        # Symbols sorted by (length, symbol); offsets[l] = index of the
        # first symbol of length l within sym_sorted.
        order = np.lexsort((np.arange(lengths.size), lengths))
        order = order[lengths[order] > 0]
        self.sym_sorted = order.astype(np.int64)
        self.offsets = np.zeros(L + 2, dtype=np.int64)
        np.cumsum(bl_count[:-1], out=self.offsets[1 : L + 1])
        if L:
            self.offsets[L + 1] = self.offsets[L] + bl_count[L]

        # Per-symbol codeword values for the encoder.
        self.code_of = np.zeros(lengths.size, dtype=np.int64)
        ranks = np.zeros(lengths.size, dtype=np.int64)
        ranks[self.sym_sorted] = np.arange(self.sym_sorted.size)
        mask = lengths > 0
        ln = lengths[mask].astype(np.int64)
        self.code_of[mask] = self.first_code[ln] + ranks[mask] - self.offsets[ln]

    def build_table(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        """First-level decode table over ``k`` peek bits.

        Returns ``(symbols, lens)`` arrays of size ``2**k``; ``lens == 0``
        marks prefixes of codes longer than ``k``.
        """
        size = 1 << k
        table_sym = np.zeros(size, dtype=np.int64)
        table_len = np.zeros(size, dtype=np.uint8)
        lengths = self.lengths
        for sym in self.sym_sorted.tolist():
            ln = int(lengths[sym])
            if ln > k:
                continue
            code = int(self.code_of[sym])
            lo = code << (k - ln)
            hi = (code + 1) << (k - ln)
            table_sym[lo:hi] = sym
            table_len[lo:hi] = ln
        return table_sym, table_len


class ReferenceHuffmanCodec:
    """Self-contained canonical Huffman blobs with chunked parallel decode.

    Parameters
    ----------
    chunk_size:
        Number of symbols per independently-decodable chunk.  Smaller
        chunks mean more offset overhead but a wider decode state machine.
    length_limit:
        Maximum codeword length (and bound on encode bit-scatter passes).
    """

    def __init__(self, chunk_size: int = 256, length_limit: int = 24) -> None:
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if not 2 <= length_limit <= 32:
            raise ValueError("length_limit must be in [2, 32]")
        self.chunk_size = chunk_size
        self.length_limit = length_limit

    # -- encoding ----------------------------------------------------------

    def encode(self, symbols: np.ndarray) -> bytes:
        symbols = np.ascontiguousarray(symbols, dtype=np.int64).ravel()
        if symbols.size and symbols.min() < 0:
            raise ValueError("symbols must be non-negative")
        n = symbols.size
        header = [write_varint(n), write_varint(self.chunk_size)]
        if n == 0:
            header.append(write_varint(0))  # empty length table
            return b"".join(header)

        counts = np.bincount(symbols)
        lengths = reference_code_lengths(counts, self.length_limit)
        canon = _Canon(lengths)

        enc_len = lengths[symbols].astype(np.int64)
        enc_val = canon.code_of[symbols]
        ends = np.cumsum(enc_len)
        starts = ends - enc_len
        total_bits = int(ends[-1])

        # One ragged scatter (O(total bits)) instead of one pass per code
        # bit position (O(symbols x max code length)).
        from repro.utils.ragged import ragged_arange

        bits = np.zeros(total_bits + 7, dtype=np.uint8)
        offs = ragged_arange(enc_len)
        rows = np.repeat(np.arange(symbols.size), enc_len)
        bits[starts[rows] + offs] = (
            (enc_val[rows] >> (enc_len[rows] - 1 - offs)) & 1
        ).astype(np.uint8)
        payload = np.packbits(bits[:total_bits]).tobytes()

        # Chunk offsets stored as uint32 deltas (they delta-compress well
        # and keep the side channel tiny even at small chunk sizes).
        chunk_starts = starts[:: self.chunk_size]
        deltas = np.diff(chunk_starts, prepend=0).astype(np.uint32)

        len_table = deflate(lengths.tobytes())
        offs = deflate(deltas.tobytes())
        header.append(write_varint(len(len_table)))
        header.append(len_table)
        header.append(write_varint(len(offs)))
        header.append(offs)
        header.append(write_varint(total_bits))
        header.append(payload)
        return b"".join(header)

    # -- decoding ----------------------------------------------------------

    def decode(self, blob: bytes) -> np.ndarray:
        n, pos = read_varint(blob)
        chunk_size, pos = read_varint(blob, pos)
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        sz, pos = read_varint(blob, pos)
        lengths = np.frombuffer(inflate(blob[pos : pos + sz]), dtype=np.uint8)
        pos += sz
        sz, pos = read_varint(blob, pos)
        deltas = np.frombuffer(inflate(blob[pos : pos + sz]), dtype=np.uint32)
        chunk_starts = np.cumsum(deltas.astype(np.int64))
        pos += sz
        total_bits, pos = read_varint(blob, pos)
        payload = blob[pos:]

        canon = _Canon(lengths)
        if canon.max_len == 0:
            raise ValueError("corrupt Huffman blob: empty code")

        # Degenerate single-symbol stream decodes without touching bits.
        if canon.sym_sorted.size == 1:
            return np.full(n, canon.sym_sorted[0], dtype=np.int64)

        return self._decode_chunks(payload, total_bits, n, chunk_size, chunk_starts, canon)

    def _decode_chunks(
        self,
        payload: bytes,
        total_bits: int,
        n: int,
        chunk_size: int,
        chunk_starts: np.ndarray,
        canon: _Canon,
    ) -> np.ndarray:
        k = min(_TABLE_BITS, canon.max_len)
        table_sym, table_len = canon.build_table(k)

        # 32-bit sliding windows: window(p) = bits p .. p+31, built from four
        # byte gathers.  Padding guarantees in-range reads near the tail.
        raw = np.frombuffer(payload, dtype=np.uint8)
        pad = np.zeros(raw.size + 8, dtype=np.int64)
        pad[: raw.size] = raw

        nchunks = chunk_starts.size
        bitpos = chunk_starts.copy()
        out = np.zeros(n, dtype=np.int64)
        outpos = np.arange(nchunks, dtype=np.int64) * chunk_size
        # Symbols remaining per chunk (last chunk may be short).
        remaining = np.full(nchunks, chunk_size, dtype=np.int64)
        remaining[-1] = n - (nchunks - 1) * chunk_size

        active = np.flatnonzero(remaining > 0)
        max_len = canon.max_len
        first_code = canon.first_code
        bl_count = canon.bl_count
        offsets = canon.offsets
        sym_sorted = canon.sym_sorted

        while active.size:
            p = bitpos[active]
            byte = p >> 3
            shift = p & 7
            w = (
                (pad[byte] << 24)
                | (pad[byte + 1] << 16)
                | (pad[byte + 2] << 8)
                | pad[byte + 3]
            )
            w = (w << shift) & 0xFFFFFFFF
            peek = w >> (32 - k)

            sym = table_sym[peek]
            ln = table_len[peek].astype(np.int64)

            long_mask = ln == 0
            if long_mask.any():
                # Rare path: extend canonically bit by bit beyond k bits.
                li = np.flatnonzero(long_mask)
                code = (w[li] >> (32 - k)).astype(np.int64)
                cur_len = np.full(li.size, k, dtype=np.int64)
                undecoded = np.ones(li.size, dtype=bool)
                lsym = np.zeros(li.size, dtype=np.int64)
                for extra in range(k + 1, max_len + 1):
                    if not undecoded.any():
                        break
                    bit = (w[li] >> (32 - extra)) & 1
                    code = np.where(undecoded, (code << 1) | bit, code)
                    cur_len = np.where(undecoded, extra, cur_len)
                    idx = code - first_code[np.minimum(extra, max_len)]
                    ok = undecoded & (idx >= 0) & (idx < bl_count[extra])
                    if ok.any():
                        oi = np.flatnonzero(ok)
                        lsym[oi] = sym_sorted[offsets[extra] + idx[oi]]
                        undecoded[oi] = False
                if undecoded.any():
                    raise ValueError("corrupt Huffman stream: unresolvable code")
                sym = sym.copy()
                ln = ln.copy()
                sym[li] = lsym
                ln[li] = cur_len

            out[outpos[active]] = sym
            outpos[active] += 1
            bitpos[active] = p + ln
            remaining[active] -= 1
            if (bitpos[active] > total_bits).any():
                raise ValueError("corrupt Huffman stream: ran past end of payload")
            active = active[remaining[active] > 0]
        return out
