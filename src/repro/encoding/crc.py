"""CRC-32C (Castagnoli) in pure numpy, fast enough for MB-scale streams.

The container format (v2, see ``docs/formats.md``) checksums every
section and the whole stream, so the hash runs on every compress *and*
every parse.  A byte-at-a-time Python loop tops out around 5 MB/s; this
module instead exploits the GF(2)-linearity of CRC: the contribution of
a message byte depends only on its value and its distance from the end
of the (block of the) message, so a precomputed ``(BLOCK, 256)``
contribution table turns a whole block into one fancy-index gather plus
an XOR reduction -- two vectorized numpy ops per 8 KiB.

``crc32c(data, value=0)`` mirrors :func:`zlib.crc32`'s signature so
checksums can be computed incrementally over stream parts.
"""

from __future__ import annotations

import numpy as np

__all__ = ["crc32c"]

_POLY = 0x82F63B78  # reflected Castagnoli polynomial
_BLOCK = 8192  # bytes folded per vectorized step; also the max tail gather


def _byte_table() -> np.ndarray:
    """The classic 256-entry table: register after one byte from state 0."""
    values = np.arange(256, dtype=np.uint32)
    for _ in range(8):
        odd = values & np.uint32(1)
        values = (values >> np.uint32(1)) ^ (np.uint32(_POLY) * odd)
    return values


_TABLE0 = _byte_table()
_TABLE0_LIST = _TABLE0.tolist()  # python ints: cheap scalar lookups

# D[d, v]: register contribution of byte value ``v`` followed by ``d``
# zero bytes, starting from register 0.  Built lazily -- ~8 MiB and a few
# thousand tiny numpy ops, paid once per process on first checksum.
_CONTRIB: np.ndarray | None = None


def _contrib_table() -> np.ndarray:
    global _CONTRIB
    if _CONTRIB is None:
        d = np.empty((_BLOCK, 256), dtype=np.uint32)
        d[0] = _TABLE0
        for i in range(1, _BLOCK):
            prev = d[i - 1]
            d[i] = _TABLE0[prev & np.uint32(0xFF)] ^ (prev >> np.uint32(8))
        _CONTRIB = d
    return _CONTRIB


def _fold_register(register: int, nbytes: int, contrib: np.ndarray) -> int:
    """Advance ``register`` through ``nbytes`` zero bytes (nbytes <= _BLOCK)."""
    out = register >> (8 * nbytes) if nbytes < 4 else 0
    for i in range(min(4, nbytes)):
        out ^= int(contrib[nbytes - 1 - i, (register >> (8 * i)) & 0xFF])
    return out


def crc32c(data: bytes, value: int = 0) -> int:
    """CRC-32C of ``data``; pass a previous result as ``value`` to chain."""
    register = (value ^ 0xFFFFFFFF) & 0xFFFFFFFF
    n = len(data)
    if n == 0:
        return value & 0xFFFFFFFF
    if n < 64:  # gather setup costs more than a short scalar loop
        for b in data:
            register = _TABLE0_LIST[(register ^ b) & 0xFF] ^ (register >> 8)
        return register ^ 0xFFFFFFFF
    contrib = _contrib_table()
    buf = np.frombuffer(data, dtype=np.uint8)
    for start in range(0, n, _BLOCK):
        block = buf[start : start + _BLOCK]
        k = block.size
        distances = np.arange(k - 1, -1, -1)
        folded = np.bitwise_xor.reduce(contrib[distances, block])
        register = _fold_register(register, k, contrib) ^ int(folded)
    return register ^ 0xFFFFFFFF
