"""CRC-32C (Castagnoli) in pure numpy, fast enough for MB-scale streams.

The container format (v2, see ``docs/formats.md``) checksums every
section and the whole stream, so the hash runs on every compress *and*
every parse -- mostly on sections of a few hundred bytes to a few
hundred KB, which makes the *fixed* cost per call matter as much as the
throughput.  A byte-at-a-time Python loop tops out around 5 MB/s; this
module instead exploits the GF(2)-linearity of CRC three times over:

* slice-by-16: the contribution of a 16-byte group to the final register
  is sixteen 256-entry table gathers XORed together, turning the message
  into one ``uint32`` contribution per group in a handful of numpy
  passes.  The initial register is folded into the first group's
  contribution (``table[b ^ r] == table[b] ^ table[r]``), so no separate
  register advance is ever needed.  Wider groups cost the same number of
  gathers as narrow ones but produce 4x fewer contributions, which
  quarters the folding work below;
* row folding: contributions at different distances from the end of the
  message differ only by a linear "advance by D zero bytes" operator.
  The groups are shaped into rows of 64 and the rows folded pairwise
  (advance the left row by the right row's span, XOR) -- log2(rows)
  batched table applications instead of log2(groups);
* a combined position table resolves the one remaining 64-group row in a
  single 256-element gather plus an XOR reduction: entry
  ``[4*j + lane][b]`` is the final-register effect of byte ``b`` in lane
  ``lane`` of row position ``j`` (i.e. advanced through ``16*(63-j)``
  trailing zero bytes).  The table (256 KB) and the per-distance advance
  tables are built once per process.

``crc32c(data, value=0)`` mirrors :func:`zlib.crc32`'s signature so
checksums can be computed incrementally over stream parts.
"""

from __future__ import annotations

import numpy as np

__all__ = ["crc32c", "crc32c_combine"]

_POLY = 0x82F63B78  # reflected Castagnoli polynomial


def _byte_table() -> np.ndarray:
    """The classic 256-entry table: register after one byte from state 0."""
    values = np.arange(256, dtype=np.uint32)
    for _ in range(8):
        odd = values & np.uint32(1)
        values = (values >> np.uint32(1)) ^ (np.uint32(_POLY) * odd)
    return values


_TABLE0 = _byte_table()
_TABLE0_LIST = _TABLE0.tolist()  # python ints: cheap scalar lookups

# Bytes per contribution group of the sliced hot path.
_GROUP = 16

# Slice tables: _WORD_TABLES[j][b] = contribution of byte value b
# followed by j more message bytes, from register 0.
_WORD_TABLES: list[np.ndarray] = [_TABLE0]
for _ in range(_GROUP - 1):
    _prev = _WORD_TABLES[-1]
    _WORD_TABLES.append(_TABLE0[_prev & np.uint32(0xFF)] ^ (_prev >> np.uint32(8)))
_WT_LISTS = [t.tolist() for t in _WORD_TABLES]

#: Groups per row in the folding stage; must match the position table.
_ROW = 64

# _ADVANCE[k]: four (256,) tables expressing register advance through
# 4 << k zero bytes; entry [i][b] is advance(b << 8i).  Built lazily as
# larger messages are seen.
_ADVANCE: list[np.ndarray] = []

# Combined position table, (256, 256): row 4*j + lane maps a byte in
# lane `lane` of row position j to its final-register effect.
_POS64: np.ndarray | None = None
_IDX256 = np.arange(256)


def _apply(tables: np.ndarray, reg: np.ndarray) -> np.ndarray:
    """Apply a 4x256 linear table set to an array of uint32 registers."""
    return (
        tables[0][reg & np.uint32(0xFF)]
        ^ tables[1][(reg >> np.uint32(8)) & np.uint32(0xFF)]
        ^ tables[2][(reg >> np.uint32(16)) & np.uint32(0xFF)]
        ^ tables[3][reg >> np.uint32(24)]
    )


def _advance_tables(k: int) -> np.ndarray:
    """Advance tables for distance ``4 << k`` bytes, built on demand."""
    while len(_ADVANCE) <= k:
        if not _ADVANCE:
            basis = np.arange(256, dtype=np.uint32)[None, :] << (
                np.uint32(8) * np.arange(4, dtype=np.uint32)[:, None]
            )
            reg = basis
            for _ in range(4):  # four zero bytes, one table step each
                reg = _TABLE0[reg & np.uint32(0xFF)] ^ (reg >> np.uint32(8))
            _ADVANCE.append(reg)
        else:
            prev = _ADVANCE[-1]
            _ADVANCE.append(_apply(prev, prev.reshape(-1)).reshape(4, 256))
    return _ADVANCE[k]


def _pos64_table() -> np.ndarray:
    """Build (lazily) the combined 64-position x 4-lane x 256 table."""
    global _POS64
    if _POS64 is None:
        t = np.empty((_ROW, 4, 256), dtype=np.uint32)
        reg = np.arange(256, dtype=np.uint32)[None, :] << (
            np.uint32(8) * np.arange(4, dtype=np.uint32)[:, None]
        )
        t[_ROW - 1] = reg  # last group: zero trailing bytes, identity
        for j in range(_ROW - 2, -1, -1):
            for _ in range(_GROUP):  # advance one more group of zero bytes
                reg = _TABLE0[reg & np.uint32(0xFF)] ^ (reg >> np.uint32(8))
            t[j] = reg
        _POS64 = t.reshape(_ROW * 4, 256)
    return _POS64


def _fold_row(row: np.ndarray) -> int:
    """Resolve a 64-group contribution row to its final register."""
    if np.little_endian:
        lanes = row.view(np.uint8)
    else:
        lanes = row.byteswap().view(np.uint8)
    return int(np.bitwise_xor.reduce(_pos64_table()[_IDX256, lanes]))


def crc32c_combine(crc1: int, crc2: int, len2: int) -> int:
    """CRC-32C of a concatenation from the CRCs of its halves.

    ``crc32c(a + b) == crc32c_combine(crc32c(a), crc32c(b), len(b))`` --
    the first CRC only needs advancing through ``len2`` zero bytes (a few
    table lookups), so joining already-hashed parts costs O(log len2)
    instead of re-reading them.
    """
    register = crc1 & 0xFFFFFFFF
    nwords, rem = divmod(len2, 4)
    k = 0
    while nwords:
        if nwords & 1:
            t = _advance_tables(k)
            register = (
                int(t[0][register & 0xFF])
                ^ int(t[1][(register >> 8) & 0xFF])
                ^ int(t[2][(register >> 16) & 0xFF])
                ^ int(t[3][register >> 24])
            )
        nwords >>= 1
        k += 1
    for _ in range(rem):
        register = _TABLE0_LIST[register & 0xFF] ^ (register >> 8)
    return register ^ (crc2 & 0xFFFFFFFF)


def crc32c(data: bytes, value: int = 0) -> int:
    """CRC-32C of ``data``; pass a previous result as ``value`` to chain."""
    register = (value ^ 0xFFFFFFFF) & 0xFFFFFFFF
    n = len(data)
    if n == 0:
        return value & 0xFFFFFFFF
    if n < 64:  # table setup costs more than a short scalar loop
        for b in data:
            register = _TABLE0_LIST[(register ^ b) & 0xFF] ^ (register >> 8)
        return register ^ 0xFFFFFFFF

    buf = np.frombuffer(data, dtype=np.uint8)
    ngroups = n // _GROUP
    groups = buf[: ngroups * _GROUP].reshape(ngroups, _GROUP)
    contrib = _WORD_TABLES[_GROUP - 1][groups[:, 0]]
    for j in range(1, _GROUP):
        contrib ^= _WORD_TABLES[_GROUP - 1 - j][groups[:, j]]
    # Fold the initial register into the first group's contribution; the
    # slice tables are GF(2)-linear, so XORing the register's per-byte
    # effects here is the same as XORing its bytes into the data.
    contrib[0] ^= np.uint32(
        _WT_LISTS[_GROUP - 1][register & 0xFF]
        ^ _WT_LISTS[_GROUP - 2][(register >> 8) & 0xFF]
        ^ _WT_LISTS[_GROUP - 3][(register >> 16) & 0xFF]
        ^ _WT_LISTS[_GROUP - 4][register >> 24]
    )

    # Pad at the front to a whole power-of-two number of 64-group rows --
    # leading zero groups contribute nothing -- then fold row pairs: at
    # level k the left row sits 4 << k bytes before its partner.
    if ngroups <= _ROW:
        row = np.zeros(_ROW, dtype=np.uint32)
        row[_ROW - ngroups :] = contrib
    else:
        nrows = (ngroups + _ROW - 1) // _ROW
        m = (1 << max(0, (nrows - 1).bit_length())) * _ROW
        if m != ngroups:
            padded = np.zeros(m, dtype=np.uint32)
            padded[m - ngroups :] = contrib
            contrib = padded
        rows = contrib.reshape(-1, _ROW)
        k = 8  # 4 << 8 == one row of 64 16-byte groups
        while rows.shape[0] > 1:
            half = rows.reshape(-1, 2, _ROW)
            rows = (
                _apply(_advance_tables(k), half[:, 0, :].reshape(-1)).reshape(
                    -1, _ROW
                )
                ^ half[:, 1, :]
            )
            k += 1
        row = rows[0]

    register = _fold_row(row)
    for b in data[ngroups * _GROUP :]:
        register = _TABLE0_LIST[(register ^ b) & 0xFF] ^ (register >> 8)
    return register ^ 0xFFFFFFFF
