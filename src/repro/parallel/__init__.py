"""Parallel-execution substrate (the paper's Section VI-F testbed).

The paper times file-per-process dumping/loading of NYX on a GPFS
supercomputer at 1024-4096 cores.  Without that machine we provide:

* :mod:`repro.parallel.comm` -- an in-process, mpi4py-shaped SPMD
  communicator (threads + barriers) so rank-structured code runs and is
  testable on one machine;
* :mod:`repro.parallel.io_model` -- a GPFS contention model anchored on
  the aggregate bandwidths implied by the paper's own uncompressed
  dump/load times;
* :mod:`repro.parallel.cluster` -- the simulated cluster combining
  *measured* per-rank compressor rates/ratios with the I/O model to
  regenerate Figure 6's dump/load breakdowns at any rank count.
"""

from repro.parallel.cluster import (
    CompressorProfile,
    DumpLoadBreakdown,
    SimulatedCluster,
    measure_profile,
)
from repro.parallel.comm import FakeComm, run_spmd
from repro.parallel.io_model import GPFSModel
from repro.parallel.runner import (
    DumpSummary,
    RankTiming,
    dump_file_per_process,
    load_file_per_process,
)

__all__ = [
    "CompressorProfile",
    "DumpLoadBreakdown",
    "DumpSummary",
    "RankTiming",
    "dump_file_per_process",
    "load_file_per_process",
    "FakeComm",
    "GPFSModel",
    "SimulatedCluster",
    "measure_profile",
    "run_spmd",
]
