"""Simulated cluster for the Figure-6 dump/load experiment.

``measure_profile`` runs a *real* compressor of this library on a shard of
data and records its compression/decompression throughput and ratio.
``SimulatedCluster`` then combines a profile with the GPFS model:

    dump(P ranks)  = bytes_per_rank / compress_rate
                   + (bytes_per_rank / ratio) / write_bw(P)
    load(P ranks)  = (bytes_per_rank / ratio) / read_bw(P)
                   + bytes_per_rank / decompress_rate

Compression is embarrassingly parallel (file-per-process), so the compute
term is rank-local; only the file system is shared.  Because our
compressors are numpy reimplementations, their absolute throughput is far
below the C codes on Bebop; profiles therefore accept a ``rate_scale``
that anchors one measured rate to the paper's reported scale while
preserving the *measured relative* speeds -- the quantity Figure 6's
comparison actually depends on (see EXPERIMENTS.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from repro.compressors.base import Compressor, ErrorBound
from repro.parallel.io_model import GPFSModel

__all__ = [
    "CompressorProfile",
    "DumpLoadBreakdown",
    "SimulatedCluster",
    "measure_profile",
]


@dataclass(frozen=True)
class CompressorProfile:
    """Measured single-rank behaviour of one compressor on one workload."""

    name: str
    compress_rate: float  # bytes of input per second
    decompress_rate: float  # bytes of output per second
    ratio: float  # input bytes / compressed bytes

    def scaled(self, rate_scale: float) -> "CompressorProfile":
        """Scale both throughputs (ratio is scale-free)."""
        if rate_scale <= 0:
            raise ValueError(f"rate_scale must be positive, got {rate_scale}")
        return replace(
            self,
            compress_rate=self.compress_rate * rate_scale,
            decompress_rate=self.decompress_rate * rate_scale,
        )


@dataclass(frozen=True)
class DumpLoadBreakdown:
    """Figure-6 bar: compute and I/O seconds for one (compressor, ranks)."""

    name: str
    ranks: int
    compress_s: float
    write_s: float
    read_s: float
    decompress_s: float

    @property
    def dump_s(self) -> float:
        return self.compress_s + self.write_s

    @property
    def load_s(self) -> float:
        return self.read_s + self.decompress_s


def measure_profile(
    compressor: Compressor,
    data: np.ndarray,
    bound: ErrorBound,
    repeats: int = 1,
) -> CompressorProfile:
    """Time real compress/decompress calls on ``data`` (best of repeats)."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best_c = float("inf")
    best_d = float("inf")
    blob = b""
    for _ in range(repeats):
        t0 = time.perf_counter()
        blob = compressor.compress(data, bound)
        t1 = time.perf_counter()
        compressor.decompress(blob)
        t2 = time.perf_counter()
        best_c = min(best_c, t1 - t0)
        best_d = min(best_d, t2 - t1)
    return CompressorProfile(
        name=compressor.name,
        compress_rate=data.nbytes / best_c,
        decompress_rate=data.nbytes / best_d,
        ratio=data.nbytes / len(blob),
    )


@dataclass(frozen=True)
class SimulatedCluster:
    """Bebop-shaped machine: homogeneous ranks over a shared GPFS."""

    fs: GPFSModel = GPFSModel()
    max_ranks: int = 4096

    def dump_load(
        self,
        profile: CompressorProfile,
        bytes_per_rank: float,
        ranks: int,
    ) -> DumpLoadBreakdown:
        """Dump and load breakdown for one compressor at one scale."""
        if not 1 <= ranks <= self.max_ranks:
            raise ValueError(f"ranks must be in [1, {self.max_ranks}], got {ranks}")
        if bytes_per_rank <= 0:
            raise ValueError("bytes_per_rank must be positive")
        compressed = bytes_per_rank / profile.ratio
        return DumpLoadBreakdown(
            name=profile.name,
            ranks=ranks,
            compress_s=bytes_per_rank / profile.compress_rate,
            write_s=self.fs.write_time(compressed, ranks),
            read_s=self.fs.read_time(compressed, ranks),
            decompress_s=bytes_per_rank / profile.decompress_rate,
        )

    def uncompressed_dump_load(
        self, bytes_per_rank: float, ranks: int
    ) -> tuple[float, float]:
        """Baseline raw-I/O dump/load seconds (the paper's 0.7-4 h anchor)."""
        return (
            self.fs.write_time(bytes_per_rank, ranks),
            self.fs.read_time(bytes_per_rank, ranks),
        )
