"""Real file-per-process dump/load on local storage.

The paper's Section VI-F workload, executable end-to-end on this machine:
every rank compresses its shard and writes ``rank_<i>.rpz`` with POSIX
I/O (file-per-process, as in the paper), then the load phase reads and
decompresses.  Ranks are the in-process SPMD threads of
:mod:`repro.parallel.comm` -- swap the communicator for ``mpi4py`` and the
same code runs on a real cluster.

Measured per-phase times feed the same :class:`DumpLoadBreakdown` shape
the simulator produces, so small real runs can sanity-check the model.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from repro.compressors.base import Compressor, ErrorBound
from repro.observe.events import emit as emit_event
from repro.observe.metrics import metrics
from repro.observe.propagate import run_traced
from repro.observe.tracer import span, spans_from_dicts
from repro.parallel.comm import FakeComm, run_spmd

__all__ = [
    "RankDeadlineError",
    "RankTiming",
    "DumpSummary",
    "atomic_write_bytes",
    "dump_file_per_process",
    "load_file_per_process",
]


class RankDeadlineError(TimeoutError):
    """A rank blew through its dump/load deadline.

    Like :class:`repro.core.chunked.ChunkTimeoutError` this is an
    environment fault, not stream damage -- deliberately outside the
    ``StreamError`` hierarchy.
    """


def _check_deadline(
    rank: int, phase: str, started: float, deadline_s: float | None
) -> None:
    """Raise :class:`RankDeadlineError` when ``rank`` is over budget.

    Checked at phase boundaries (after compress/decompress and after
    I/O): a rank cannot be killed mid-syscall from its own thread, but a
    straggler is reported -- and the whole dump/load failed loudly --
    within one phase of the breach instead of hanging the job.
    """
    if deadline_s is None:
        return
    elapsed = time.perf_counter() - started
    if elapsed <= deadline_s:
        return
    metrics().counter("rank.deadline_exceeded").inc()
    emit_event(
        "rank-deadline", rank=rank, phase=phase,
        elapsed_s=round(elapsed, 6), deadline_s=deadline_s,
    )
    raise RankDeadlineError(
        f"rank {rank} exceeded its {deadline_s}s deadline after {phase} "
        f"({elapsed:.3f}s elapsed)"
    )


@dataclass(frozen=True)
class RankTiming:
    rank: int
    compute_s: float  # compress or decompress time
    io_s: float  # write or read time
    bytes_in: int
    bytes_out: int


@dataclass(frozen=True)
class DumpSummary:
    timings: tuple[RankTiming, ...]

    @property
    def wall_compute_s(self) -> float:
        return max(t.compute_s for t in self.timings)

    @property
    def wall_io_s(self) -> float:
        return max(t.io_s for t in self.timings)

    @property
    def total_bytes_in(self) -> int:
        return sum(t.bytes_in for t in self.timings)

    @property
    def total_bytes_out(self) -> int:
        return sum(t.bytes_out for t in self.timings)

    @property
    def ratio(self) -> float:
        return self.total_bytes_in / self.total_bytes_out


def _rank_path(out_dir: str, rank: int) -> str:
    return os.path.join(out_dir, f"rank_{rank}.rpz")


def _fsync_parent_dir(path: str) -> None:
    """Flush the parent directory entry of a just-renamed file.

    ``os.replace`` makes the rename atomic, but until the *directory* is
    fsynced the new entry lives only in the page cache -- a power loss
    can silently drop a file whose write and rename both "succeeded".
    POSIX-only (Windows has no directory fsync) and best-effort: some
    filesystems refuse ``fsync`` on a directory fd, and a file that
    merely shows up late is strictly better than a failed write.
    """
    if os.name != "posix":
        return
    parent = os.path.dirname(os.path.abspath(path)) or "."
    try:
        fd = os.open(parent, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: str,
    blob: bytes,
    retries: int = 3,
    backoff_s: float = 0.05,
    _sleep=time.sleep,
) -> None:
    """Write ``blob`` to ``path`` atomically, retrying transient failures.

    The bytes land in ``path + ".tmp"`` first, are fsynced, then renamed
    over ``path``, and finally the parent directory is fsynced so the
    rename itself is durable -- a mid-write crash (or power loss) can
    leave a stale temp file but never a truncated or vanished ``path``.
    Transient ``OSError``s (full/flaky filesystem, NFS hiccups) are
    retried with exponential backoff before the last error propagates.

    The named crash points (:func:`repro.resilience.crashpoints.reach`)
    let the chaos harness kill this function at every boundary and assert
    those invariants hold.
    """
    from repro.resilience.crashpoints import reach

    tmp = path + ".tmp"
    for attempt in range(retries + 1):
        try:
            t0 = time.perf_counter()
            with open(tmp, "wb") as fh:
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
            reach("io.tmp-written", path=path)
            os.replace(tmp, path)
            reach("io.renamed", path=path)
            _fsync_parent_dir(path)
            reach("io.dir-synced", path=path)
            reg = metrics()
            reg.counter("io.write_s").inc(time.perf_counter() - t0)
            reg.counter("io.bytes_written").inc(len(blob))
            return
        except OSError:
            if attempt == retries:
                raise
            metrics().counter("io.write_retries").inc()
            _sleep(backoff_s * 2**attempt)


def dump_file_per_process(
    shards: list[np.ndarray],
    compressor: Compressor,
    bound: ErrorBound,
    out_dir: str,
    chunk_bytes: int | None = None,
    workers: int | None = None,
    io_retries: int = 3,
    io_backoff_s: float = 0.05,
    parity: int = 0,
    group_size: int | None = None,
    chunk_timeout: float | None = None,
    deadline_s: float | None = None,
) -> DumpSummary:
    """Compress and write one file per rank (rank count = ``len(shards)``).

    ``chunk_bytes`` enables per-rank chunking: each rank runs its shard
    through a :class:`ChunkedCompressor` wrapping ``compressor``, with
    ``workers`` thread-pool jobs per rank (thread executor -- ranks are
    already threads here, and forking from a threaded process is unsafe;
    swap in real MPI ranks for process-level parallelism).  ``parity``,
    ``group_size`` and ``chunk_timeout`` pass straight through to the
    :class:`~repro.core.chunked.ChunkedCompressor` (Reed-Solomon parity
    per chunk group, per-chunk watchdog deadline).

    ``deadline_s`` bounds each rank's whole dump: a rank over budget
    raises :class:`RankDeadlineError` at its next phase boundary, failing
    the dump loudly instead of letting one straggler stall the job.

    Writes are atomic (temp file + fsync + rename) and transient
    ``OSError``s are retried ``io_retries`` times with exponential
    backoff starting at ``io_backoff_s`` -- see :func:`atomic_write_bytes`.
    """
    if not shards:
        raise ValueError("need at least one shard")
    if chunk_bytes is not None:
        from repro.core.chunked import DEFAULT_GROUP_SIZE, ChunkedCompressor

        compressor = ChunkedCompressor(
            compressor,
            chunk_bytes=chunk_bytes,
            workers=workers if workers is not None else 1,
            executor="thread",
            parity=parity,
            group_size=group_size if group_size is not None else DEFAULT_GROUP_SIZE,
            timeout=chunk_timeout,
        )
    elif parity or chunk_timeout is not None:
        raise ValueError("parity/chunk_timeout require chunk_bytes (chunked ranks)")
    os.makedirs(out_dir, exist_ok=True)

    def rank_work(rank: int) -> RankTiming:
        shard = shards[rank]
        with span("rank", rank=rank) as sp:
            t0 = time.perf_counter()
            blob = compressor.compress(shard, bound)
            t1 = time.perf_counter()
            _check_deadline(rank, "compress", t0, deadline_s)
            with span("write-file"):
                atomic_write_bytes(
                    _rank_path(out_dir, rank), blob,
                    retries=io_retries, backoff_s=io_backoff_s,
                )
            t2 = time.perf_counter()
            _check_deadline(rank, "write", t0, deadline_s)
            sp.add_bytes(in_=shard.nbytes, out=len(blob))
            emit_event(
                "rank-dump",
                span=sp,
                rank=rank,
                bytes_in=shard.nbytes,
                bytes_out=len(blob),
            )
        return RankTiming(rank, t1 - t0, t2 - t1, shard.nbytes, len(blob))

    def rank_main(comm: FakeComm):
        # Ranks are threads: capture each rank's span tree and hand it to
        # the dispatching thread, which stitches all of them under one
        # ``dump`` span (see repro.observe.propagate).
        return run_traced(rank_work, comm.Get_rank())

    with span("dump", ranks=len(shards)) as root:
        results = run_spmd(len(shards), rank_main)
        timings = []
        for timing, telem in results:
            timings.append(timing)
            root.adopt(spans_from_dicts(telem.spans))
    return DumpSummary(tuple(timings))


def load_file_per_process(
    out_dir: str,
    nranks: int,
    tolerate_corruption: bool = False,
    fill: float | str = "nan",
    deadline_s: float | None = None,
):
    """Read and decompress every rank file.

    Returns ``(shards, summary)``; corrupt files raise ``StreamError``.

    With ``tolerate_corruption=True`` the return is ``(shards, summary,
    reports)``: a damaged rank file no longer fails the load -- chunks
    covered by parity are rebuilt, remaining intact chunks are recovered
    (:func:`repro.core.chunked.recover_array`), unrecoverable spans are
    filled per ``fill`` (a float, or ``"nan"``/``"zero"``/``"nearest"``),
    and ``reports[rank]`` is the
    :class:`~repro.core.chunked.RecoveryReport` (None for clean ranks).
    A rank whose geometry is unreadable yields a ``None`` shard.
    ``deadline_s`` bounds each rank's whole load like in
    :func:`dump_file_per_process`.
    """
    from repro import decompress
    from repro.core.chunked import recover_array

    if nranks <= 0:
        raise ValueError("nranks must be positive")

    def rank_work(rank: int):
        with span("rank", rank=rank) as sp:
            t0 = time.perf_counter()
            with span("read-file"):
                with open(_rank_path(out_dir, rank), "rb") as fh:
                    blob = fh.read()
            reg = metrics()
            t1 = time.perf_counter()
            reg.counter("io.read_s").inc(t1 - t0)
            reg.counter("io.bytes_read").inc(len(blob))
            _check_deadline(rank, "read", t0, deadline_s)
            if tolerate_corruption:
                shard, report = recover_array(blob, fill)
            else:
                shard, report = decompress(blob), None
            t2 = time.perf_counter()
            _check_deadline(rank, "decompress", t0, deadline_s)
            nbytes = shard.nbytes if shard is not None else 0
            sp.add_bytes(in_=len(blob), out=nbytes)
            emit_event(
                "rank-load",
                span=sp,
                rank=rank,
                bytes_in=len(blob),
                bytes_out=nbytes,
                recovered=(report is not None and not report.complete) or None,
            )
        return shard, RankTiming(rank, t2 - t1, t1 - t0, len(blob), nbytes), report

    def rank_main(comm: FakeComm):
        return run_traced(rank_work, comm.Get_rank())

    with span("load", ranks=nranks) as root:
        traced = run_spmd(nranks, rank_main)
        results = []
        for result, telem in traced:
            results.append(result)
            root.adopt(spans_from_dicts(telem.spans))
    shards = [r[0] for r in results]
    summary = DumpSummary(tuple(r[1] for r in results))
    if tolerate_corruption:
        return shards, summary, [r[2] for r in results]
    return shards, summary
