"""Real file-per-process dump/load on local storage.

The paper's Section VI-F workload, executable end-to-end on this machine:
every rank compresses its shard and writes ``rank_<i>.rpz`` with POSIX
I/O (file-per-process, as in the paper), then the load phase reads and
decompresses.  Ranks are the in-process SPMD threads of
:mod:`repro.parallel.comm` -- swap the communicator for ``mpi4py`` and the
same code runs on a real cluster.

Measured per-phase times feed the same :class:`DumpLoadBreakdown` shape
the simulator produces, so small real runs can sanity-check the model.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from repro.compressors.base import Compressor, ErrorBound
from repro.parallel.comm import FakeComm, run_spmd

__all__ = ["RankTiming", "DumpSummary", "dump_file_per_process", "load_file_per_process"]


@dataclass(frozen=True)
class RankTiming:
    rank: int
    compute_s: float  # compress or decompress time
    io_s: float  # write or read time
    bytes_in: int
    bytes_out: int


@dataclass(frozen=True)
class DumpSummary:
    timings: tuple[RankTiming, ...]

    @property
    def wall_compute_s(self) -> float:
        return max(t.compute_s for t in self.timings)

    @property
    def wall_io_s(self) -> float:
        return max(t.io_s for t in self.timings)

    @property
    def total_bytes_in(self) -> int:
        return sum(t.bytes_in for t in self.timings)

    @property
    def total_bytes_out(self) -> int:
        return sum(t.bytes_out for t in self.timings)

    @property
    def ratio(self) -> float:
        return self.total_bytes_in / self.total_bytes_out


def _rank_path(out_dir: str, rank: int) -> str:
    return os.path.join(out_dir, f"rank_{rank}.rpz")


def dump_file_per_process(
    shards: list[np.ndarray],
    compressor: Compressor,
    bound: ErrorBound,
    out_dir: str,
    chunk_bytes: int | None = None,
    workers: int | None = None,
) -> DumpSummary:
    """Compress and write one file per rank (rank count = ``len(shards)``).

    ``chunk_bytes`` enables per-rank chunking: each rank runs its shard
    through a :class:`ChunkedCompressor` wrapping ``compressor``, with
    ``workers`` thread-pool jobs per rank (thread executor -- ranks are
    already threads here, and forking from a threaded process is unsafe;
    swap in real MPI ranks for process-level parallelism).
    """
    if not shards:
        raise ValueError("need at least one shard")
    if chunk_bytes is not None:
        from repro.core.chunked import ChunkedCompressor

        compressor = ChunkedCompressor(
            compressor,
            chunk_bytes=chunk_bytes,
            workers=workers if workers is not None else 1,
            executor="thread",
        )
    os.makedirs(out_dir, exist_ok=True)

    def rank_main(comm: FakeComm) -> RankTiming:
        rank = comm.Get_rank()
        shard = shards[rank]
        t0 = time.perf_counter()
        blob = compressor.compress(shard, bound)
        t1 = time.perf_counter()
        with open(_rank_path(out_dir, rank), "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        t2 = time.perf_counter()
        return RankTiming(rank, t1 - t0, t2 - t1, shard.nbytes, len(blob))

    return DumpSummary(tuple(run_spmd(len(shards), rank_main)))


def load_file_per_process(
    out_dir: str, nranks: int
) -> tuple[list[np.ndarray], DumpSummary]:
    """Read and decompress every rank file; returns (shards, summary)."""
    from repro import decompress

    if nranks <= 0:
        raise ValueError("nranks must be positive")

    def rank_main(comm: FakeComm) -> tuple[np.ndarray, RankTiming]:
        rank = comm.Get_rank()
        t0 = time.perf_counter()
        with open(_rank_path(out_dir, rank), "rb") as fh:
            blob = fh.read()
        t1 = time.perf_counter()
        shard = decompress(blob)
        t2 = time.perf_counter()
        return shard, RankTiming(rank, t2 - t1, t1 - t0, len(blob), shard.nbytes)

    results = run_spmd(nranks, rank_main)
    shards = [r[0] for r in results]
    return shards, DumpSummary(tuple(r[1] for r in results))
