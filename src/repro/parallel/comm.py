"""In-process SPMD communicator with mpi4py's collective vocabulary.

``run_spmd(nranks, fn)`` launches ``fn(comm)`` on ``nranks`` threads; each
thread sees a :class:`FakeComm` whose ``Get_rank``/``Get_size``/``bcast``/
``scatter``/``gather``/``allreduce``/``barrier`` behave like
``mpi4py.MPI.COMM_WORLD`` for picklable Python objects and numpy arrays.
Collectives synchronize on barriers, so rank code with data dependencies
is exercised realistically (numpy releases the GIL, so ranks genuinely
overlap).  This exists to keep the library's parallel code MPI-shaped --
drop-in portable to real mpi4py -- while remaining runnable and testable
in this repository's single-node environment.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

__all__ = ["FakeComm", "run_spmd"]


class _Shared:
    """State shared by all ranks of one SPMD execution."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.barrier = threading.Barrier(size)
        self.slots: list[Any] = [None] * size
        self.lock = threading.Lock()


class FakeComm:
    """One rank's view of the shared communicator."""

    def __init__(self, shared: _Shared, rank: int) -> None:
        self._shared = shared
        self._rank = rank

    # -- mpi4py surface ------------------------------------------------------

    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self._shared.size

    def barrier(self) -> None:
        self._shared.barrier.wait()

    Barrier = barrier

    def bcast(self, obj: Any, root: int = 0) -> Any:
        sh = self._shared
        if self._rank == root:
            sh.slots[root] = obj
        sh.barrier.wait()
        out = sh.slots[root]
        sh.barrier.wait()  # keep root's slot alive until everyone copied
        return out

    def scatter(self, sendobj: Any, root: int = 0) -> Any:
        sh = self._shared
        if self._rank == root:
            if sendobj is None or len(sendobj) != sh.size:
                raise ValueError(f"scatter needs a length-{sh.size} sequence at root")
            for i, item in enumerate(sendobj):
                sh.slots[i] = item
        sh.barrier.wait()
        out = sh.slots[self._rank]
        sh.barrier.wait()
        return out

    def gather(self, sendobj: Any, root: int = 0) -> list[Any] | None:
        sh = self._shared
        sh.slots[self._rank] = sendobj
        sh.barrier.wait()
        out = list(sh.slots) if self._rank == root else None
        sh.barrier.wait()
        return out

    def allgather(self, sendobj: Any) -> list[Any]:
        sh = self._shared
        sh.slots[self._rank] = sendobj
        sh.barrier.wait()
        out = list(sh.slots)
        sh.barrier.wait()
        return out

    def allreduce(self, sendobj: Any, op: Callable[[Any, Any], Any] = None) -> Any:
        values = self.allgather(sendobj)
        if op is None:
            total = values[0]
            for v in values[1:]:
                total = total + v
            return total
        total = values[0]
        for v in values[1:]:
            total = op(total, v)
        return total


def run_spmd(nranks: int, fn: Callable[[FakeComm], Any]) -> list[Any]:
    """Run ``fn(comm)`` on ``nranks`` concurrent ranks; returns per-rank
    results in rank order.  Exceptions on any rank are re-raised."""
    if nranks <= 0:
        raise ValueError(f"nranks must be positive, got {nranks}")
    shared = _Shared(nranks)
    results: list[Any] = [None] * nranks
    errors: list[BaseException | None] = [None] * nranks

    def worker(rank: int) -> None:
        try:
            results[rank] = fn(FakeComm(shared, rank))
        except BaseException as exc:  # noqa: BLE001 - propagated below
            errors[rank] = exc
            shared.barrier.abort()

    threads = [threading.Thread(target=worker, args=(r,)) for r in range(nranks)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for exc in errors:
        if exc is not None and not isinstance(exc, threading.BrokenBarrierError):
            raise exc
    for exc in errors:
        if exc is not None:
            raise exc
    return results
