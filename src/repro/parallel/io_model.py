"""GPFS file-per-process I/O contention model.

The paper reports that dumping the *uncompressed* 3-12 TB NYX snapshots
takes 0.7-2.8 hours and loading takes 1-4 hours on Bebop's GPFS -- which
pins the file system's saturated aggregate bandwidths at roughly 1.2 GB/s
(write) and 0.85 GB/s (read).  The model below is the standard two-regime
shape for file-per-process POSIX I/O:

* few ranks: each rank is limited by its own link (``per_process_bw``),
* many ranks: the file system saturates and every rank gets an equal
  share of the aggregate.

At the paper's scales (>= 1024 ranks, GBs per rank) the aggregate regime
dominates, so dump/load times are driven by *compressed bytes*, which is
exactly why the compressor with the best ratio wins Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GPFSModel"]


@dataclass(frozen=True)
class GPFSModel:
    """Aggregate-bandwidth contention model for a parallel file system."""

    aggregate_write_bw: float = 1.2e9  # bytes/s, saturated write
    aggregate_read_bw: float = 0.85e9  # bytes/s, saturated read
    per_process_bw: float = 1.0e9  # bytes/s, single-rank link ceiling
    metadata_overhead_s: float = 0.5  # per-rank open/close latency (hidden
    #                                   by parallelism; counted once)

    def __post_init__(self) -> None:
        for name in ("aggregate_write_bw", "aggregate_read_bw", "per_process_bw"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    def effective_write_bw(self, ranks: int) -> float:
        """Per-rank write bandwidth at a given concurrency."""
        self._check_ranks(ranks)
        return min(self.per_process_bw, self.aggregate_write_bw / ranks)

    def effective_read_bw(self, ranks: int) -> float:
        self._check_ranks(ranks)
        return min(self.per_process_bw, self.aggregate_read_bw / ranks)

    def write_time(self, nbytes_per_rank: float, ranks: int) -> float:
        """Wall-clock seconds for every rank to write its file."""
        return self.metadata_overhead_s + nbytes_per_rank / self.effective_write_bw(ranks)

    def read_time(self, nbytes_per_rank: float, ranks: int) -> float:
        return self.metadata_overhead_s + nbytes_per_rank / self.effective_read_bw(ranks)

    @staticmethod
    def _check_ranks(ranks: int) -> None:
        if ranks <= 0:
            raise ValueError(f"ranks must be positive, got {ranks}")
