"""Reading and writing raw binary fields.

HPC snapshot fields are conventionally stored as headerless little-endian
binaries (the format SZ/ZFP's command-line tools consume).  These helpers
move between such files, ``.npy`` files, and numpy arrays, with the shape
and dtype supplied out-of-band exactly as the reference tools require.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = ["read_raw", "write_raw", "load_array", "save_array"]


def read_raw(
    path: str,
    shape: tuple[int, ...],
    dtype: np.dtype = np.float32,
) -> np.ndarray:
    """Read a headerless little-endian binary field.

    The file size must match ``prod(shape) * itemsize`` exactly --
    mismatches almost always mean a wrong shape/dtype, so they are an
    error rather than a truncation.
    """
    dtype = np.dtype(dtype)
    expected = int(np.prod(shape)) * dtype.itemsize
    actual = os.path.getsize(path)
    if actual != expected:
        raise ValueError(
            f"{path}: file holds {actual} bytes but shape {shape} of "
            f"{dtype.name} needs {expected}"
        )
    data = np.fromfile(path, dtype=dtype.newbyteorder("<"))
    return data.astype(dtype).reshape(shape)


def write_raw(path: str, data: np.ndarray) -> None:
    """Write a headerless little-endian binary field."""
    arr = np.ascontiguousarray(data)
    arr.astype(arr.dtype.newbyteorder("<"), copy=False).tofile(path)


def load_array(path: str, shape: tuple[int, ...] | None = None,
               dtype: np.dtype = np.float32) -> np.ndarray:
    """Load ``.npy`` (self-describing) or raw binary (shape required)."""
    if path.endswith(".npy"):
        return np.load(path)
    if shape is None:
        raise ValueError(f"{path}: raw binary input needs an explicit shape")
    return read_raw(path, shape, dtype)


def save_array(path: str, data: np.ndarray) -> None:
    """Save as ``.npy`` when the extension asks for it, else raw binary."""
    if path.endswith(".npy"):
        np.save(path, data)
    else:
        write_raw(path, data)
