"""Field registry mirroring the paper's Table I.

Each application exposes named fields with the statistical fingerprint the
paper describes (or that the underlying simulations are documented to
have):

* **HACC** -- 1-D particle velocities; particle storage order largely
  decorrelates them, which is why the paper calls HACC "sharply varying"
  and why blockwise SZ_PWR struggles on it.
* **CESM-ATM** -- 2-D climate fields; cloud fractions live in [0, 1] with
  exact-zero regions (clipped), radiative/temperature fields are smooth.
* **NYX** -- 3-D cosmology; ``dark_matter_density`` is log-normal with
  ~84% of values in [0, 1] and a 1e4-scale tail (the paper's motivating
  field for point-wise relative bounds), ``velocity_*`` are large signed
  smooth fields.
* **Hurricane** -- 3-D weather; ``CLOUDf48``-style fields are mostly
  exact zeros with spiky condensate, winds are signed and smooth.

Default sizes are laptop-scale (DESIGN.md section 2); ``scale`` multiplies
every axis for larger runs.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.data.generators import gaussian_random_field

__all__ = ["Field", "APPLICATIONS", "application_names", "field_names", "load_field"]


@dataclass(frozen=True)
class Field:
    """A synthetic stand-in for one simulation output field."""

    app: str
    name: str
    shape: tuple[int, ...]
    description: str
    make: Callable[[tuple[int, ...], int], np.ndarray]

    def generate(self, scale: float = 1.0, seed: int | None = None) -> np.ndarray:
        """Materialize the field as float32 (deterministic in the seed)."""
        shape = tuple(max(8, int(round(s * scale))) for s in self.shape)
        if seed is None:
            seed = zlib.crc32(f"{self.app}/{self.name}".encode())
        return self.make(shape, seed).astype(np.float32)


def _signed_velocity(sigma: float, beta: float, mix: float):
    def make(shape, seed):
        return sigma * gaussian_random_field(shape, beta=beta, seed=seed, mix_white=mix)

    return make


def _particle_velocity(median: float, spread: float, beta: float, mix: float):
    """HACC-style particle velocity: a log-normal *dispersion* field
    modulates signed fluctuations, so most particles are slow (cold voids)
    while halo particles reach ~100x the median -- the population that
    makes absolute error bounds skew velocity angles (Fig. 5) and starves
    blockwise SZ_PWR (Fig. 2a)."""

    def make(shape, seed):
        amp = median * np.exp(
            spread * gaussian_random_field(shape, beta=beta, seed=seed)
        )
        direction = gaussian_random_field(shape, beta=beta, seed=seed + 1, mix_white=mix)
        return amp * direction

    return make


def _lognormal(sigma: float, mu: float, beta: float, unit: float = 1.0):
    def make(shape, seed):
        g = gaussian_random_field(shape, beta=beta, seed=seed)
        return unit * np.exp(sigma * g + mu)

    return make


def _fraction(beta: float, center: float = 0.5, amp: float = 0.45):
    def make(shape, seed):
        g = gaussian_random_field(shape, beta=beta, seed=seed)
        return np.clip(center + amp * g, 0.0, 1.0)

    return make


def _smooth_offset(mean: float, sigma: float, beta: float):
    def make(shape, seed):
        return mean + sigma * gaussian_random_field(shape, beta=beta, seed=seed)

    return make


def _sparse_condensate(threshold: float, unit: float, beta: float):
    """Mostly-zero field with positive spikes (cloud/rain water)."""

    def make(shape, seed):
        g = gaussian_random_field(shape, beta=beta, seed=seed)
        return unit * np.maximum(g - threshold, 0.0)

    return make


_HACC_SHAPE = (1 << 19,)
_CESM_SHAPE = (256, 512)
_NYX_SHAPE = (64, 64, 64)
_HURR_SHAPE = (32, 128, 128)

# NYX dark_matter_density calibration: P(rho <= 1) ~ 0.84 and
# max ~ 1.4e4 over ~2.6e5 samples  =>  sigma ~ 2.7, mu = -sigma.
_FIELDS: list[Field] = [
    # -- HACC (Table I: 3 fields, 1-D particle arrays) ----------------------
    Field("HACC", "velocity_x", _HACC_SHAPE,
          "particle x-velocity: log-normal dispersion, mostly slow particles",
          _particle_velocity(300.0, 1.3, beta=2.0, mix=0.35)),
    Field("HACC", "velocity_y", _HACC_SHAPE,
          "particle y-velocity: log-normal dispersion, mostly slow particles",
          _particle_velocity(300.0, 1.3, beta=2.0, mix=0.35)),
    Field("HACC", "velocity_z", _HACC_SHAPE,
          "particle z-velocity: log-normal dispersion, mostly slow particles",
          _particle_velocity(300.0, 1.3, beta=2.0, mix=0.35)),
    # -- CESM-ATM (2-D climate) ---------------------------------------------
    Field("CESM-ATM", "CLDHGH", _CESM_SHAPE,
          "high-cloud fraction in [0,1] with clipped zero regions",
          _fraction(beta=3.2)),
    Field("CESM-ATM", "CLDLOW", _CESM_SHAPE,
          "low-cloud fraction in [0,1] with clipped zero regions",
          _fraction(beta=3.0, center=0.4)),
    Field("CESM-ATM", "FLDS", _CESM_SHAPE,
          "downwelling longwave flux, smooth positive",
          _smooth_offset(350.0, 40.0, beta=3.5)),
    Field("CESM-ATM", "TS", _CESM_SHAPE,
          "surface temperature (K), smooth positive",
          _smooth_offset(285.0, 15.0, beta=3.5)),
    Field("CESM-ATM", "PRECT", _CESM_SHAPE,
          "precipitation rate, tiny positive log-normal",
          _lognormal(1.8, 0.0, beta=3.0, unit=2e-8)),
    # -- NYX (3-D cosmology) ------------------------------------------------
    Field("NYX", "dark_matter_density", _NYX_SHAPE,
          "log-normal density, ~84% of mass in [0,1], 1e4-scale tail",
          _lognormal(2.7, -2.7, beta=3.5)),
    Field("NYX", "baryon_density", _NYX_SHAPE,
          "log-normal density, slightly narrower than dark matter",
          _lognormal(2.2, -2.2, beta=3.5)),
    Field("NYX", "temperature", _NYX_SHAPE,
          "gas temperature (K), positive log-normal around 1e4",
          _lognormal(1.5, 0.0, beta=3.2, unit=1e4)),
    Field("NYX", "velocity_x", _NYX_SHAPE,
          "large signed velocity, smooth",
          _signed_velocity(8000.0, beta=3.0, mix=0.05)),
    Field("NYX", "velocity_y", _NYX_SHAPE,
          "large signed velocity, smooth",
          _signed_velocity(8000.0, beta=3.0, mix=0.05)),
    Field("NYX", "velocity_z", _NYX_SHAPE,
          "large signed velocity, smooth",
          _signed_velocity(8000.0, beta=3.0, mix=0.05)),
    # -- Hurricane ISABEL (3-D weather) --------------------------------------
    Field("Hurricane", "CLOUDf48", _HURR_SHAPE,
          "cloud water: ~84% exact zeros, positive spikes",
          _sparse_condensate(1.0, 1e-3, beta=2.8)),
    Field("Hurricane", "PRECIPf48", _HURR_SHAPE,
          "precipitation: mostly zeros, positive spikes",
          _sparse_condensate(1.3, 5e-3, beta=2.5)),
    Field("Hurricane", "Uf48", _HURR_SHAPE,
          "zonal wind, signed, smooth",
          _signed_velocity(25.0, beta=3.2, mix=0.05)),
    Field("Hurricane", "Vf48", _HURR_SHAPE,
          "meridional wind, signed, smooth",
          _signed_velocity(25.0, beta=3.2, mix=0.05)),
    Field("Hurricane", "Wf48", _HURR_SHAPE,
          "vertical wind, signed, rougher",
          _signed_velocity(2.0, beta=2.2, mix=0.15)),
    Field("Hurricane", "TCf48", _HURR_SHAPE,
          "temperature (C), smooth, crosses zero",
          _smooth_offset(-25.0, 30.0, beta=3.5)),
    Field("Hurricane", "QVAPORf48", _HURR_SHAPE,
          "water vapour mixing ratio, positive log-normal",
          _lognormal(1.2, 0.0, beta=3.2, unit=5e-3)),
]

APPLICATIONS: dict[str, dict[str, Field]] = {}
for _f in _FIELDS:
    APPLICATIONS.setdefault(_f.app, {})[_f.name] = _f


def application_names() -> list[str]:
    return list(APPLICATIONS)


def field_names(app: str) -> list[str]:
    try:
        return list(APPLICATIONS[app])
    except KeyError:
        raise KeyError(f"unknown application {app!r}; known: {application_names()}") from None


def load_field(
    app: str, name: str, scale: float = 1.0, seed: int | None = None
) -> np.ndarray:
    """Generate one field; ``scale`` multiplies every axis length."""
    fields = APPLICATIONS.get(app)
    if fields is None:
        raise KeyError(f"unknown application {app!r}; known: {application_names()}")
    field = fields.get(name)
    if field is None:
        raise KeyError(f"unknown field {name!r} of {app}; known: {list(fields)}")
    return field.generate(scale=scale, seed=seed)
