"""Gaussian-random-field synthesis via spectral filtering.

``gaussian_random_field(shape, beta)`` draws white noise, shapes its power
spectrum to ``k**-beta`` in Fourier space and transforms back -- the
standard construction for cosmology/climate-like fields.  ``beta``
controls smoothness: 0 is white noise (hard to predict, HACC-like),
3-4 gives the smooth large-scale structure typical of climate fields.
All generators are deterministic in the seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["spectral_noise", "gaussian_random_field"]


def spectral_noise(
    shape: tuple[int, ...], beta: float, rng: np.random.Generator
) -> np.ndarray:
    """Zero-mean unit-variance field with ``k**-beta`` power spectrum."""
    if not 1 <= len(shape) <= 3:
        raise ValueError(f"1-D to 3-D shapes supported, got {shape}")
    white = rng.standard_normal(shape)
    if beta == 0:
        return white.astype(np.float64)
    spectrum = np.fft.rfftn(white)
    k2 = _ksquared(shape)
    with np.errstate(divide="ignore"):
        filt = np.where(k2 > 0, k2 ** (-beta / 4.0), 0.0)
    field = np.fft.irfftn(spectrum * filt, s=shape, axes=range(len(shape)))
    std = field.std()
    if std == 0:
        raise ValueError(f"degenerate spectrum for shape {shape}, beta {beta}")
    return (field - field.mean()) / std


def _ksquared(shape: tuple[int, ...]) -> np.ndarray:
    """Squared wavenumber magnitude on the rfftn grid of ``shape``."""
    axes = [np.fft.fftfreq(n) for n in shape[:-1]]
    axes.append(np.fft.rfftfreq(shape[-1]))
    k2 = np.zeros(tuple(len(a) for a in axes))
    for i, freq in enumerate(axes):
        expand = [None] * len(axes)
        expand[i] = slice(None)
        k2 = k2 + freq[tuple(expand)] ** 2
    return k2


def gaussian_random_field(
    shape: tuple[int, ...],
    beta: float = 3.0,
    seed: int = 0,
    mix_white: float = 0.0,
) -> np.ndarray:
    """Convenience wrapper: correlated field with optional white component.

    ``mix_white`` in [0, 1] blends in unstructured noise (1 = pure white);
    used to emulate particle data whose storage order decorrelates it.
    """
    if not 0 <= mix_white <= 1:
        raise ValueError(f"mix_white must be in [0, 1], got {mix_white}")
    rng = np.random.default_rng(seed)
    smooth = spectral_noise(shape, beta, rng)
    if mix_white == 0:
        return smooth
    white = rng.standard_normal(shape)
    out = (1.0 - mix_white) * smooth + mix_white * white
    return (out - out.mean()) / out.std()
