"""Synthetic HPC application datasets (Table I substitute).

The paper evaluates on real snapshots of HACC, CESM-ATM, NYX and Hurricane
ISABEL.  Those multi-GB datasets are not redistributable here, so this
package synthesizes fields with the same statistical fingerprints the
paper's effects depend on -- value distribution (log-normal densities,
signed velocities, [0,1] fractions), smoothness spectrum, zero fraction
and sign structure -- at laptop-friendly sizes.  DESIGN.md section 2
documents the substitution argument.
"""

from repro.data.datasets import (
    APPLICATIONS,
    Field,
    application_names,
    field_names,
    load_field,
)
from repro.data.generators import gaussian_random_field, spectral_noise

__all__ = [
    "APPLICATIONS",
    "Field",
    "application_names",
    "field_names",
    "gaussian_random_field",
    "load_field",
    "spectral_noise",
]
